//! The fixed-latency memory backend used by the paper's Section II
//! latency-tolerance experiment (Fig. 1).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use gpumem_types::{Cycle, MemFetch};

#[derive(Debug)]
struct Due {
    at: Cycle,
    seq: u64,
    fetch: MemFetch,
}

impl PartialEq for Due {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Due {}
impl PartialOrd for Due {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Due {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// An idealized memory system that answers every L1 miss after a fixed,
/// configurable latency with unlimited bandwidth.
///
/// This is the paper's Fig. 1 instrument: *"we modify the memory hierarchy
/// of the baseline architecture so that all the L1 miss responses are
/// returned with a fixed and pre-determined latency"*. Loads come back
/// exactly `latency` cycles after submission; stores are absorbed
/// immediately (write-through traffic needs no response).
///
/// # Example
///
/// ```
/// use gpumem_sim::FixedLatencyMemory;
/// use gpumem_types::{AccessKind, CoreId, Cycle, FetchId, LineAddr, MemFetch};
///
/// let mut mem = FixedLatencyMemory::new(100);
/// let f = MemFetch::new(FetchId::new(1), AccessKind::Load, LineAddr::new(2), CoreId::new(0));
/// mem.submit(f, Cycle::new(10));
/// assert!(mem.pop_due(Cycle::new(109)).is_none());
/// assert!(mem.pop_due(Cycle::new(110)).is_some());
/// ```
#[derive(Debug)]
pub struct FixedLatencyMemory {
    latency: u64,
    pending: BinaryHeap<Due>,
    next_seq: u64,
    loads_served: u64,
    stores_sunk: u64,
}

impl FixedLatencyMemory {
    /// Creates a responder with the given fixed latency in cycles.
    pub fn new(latency: u64) -> Self {
        FixedLatencyMemory {
            latency,
            pending: BinaryHeap::new(),
            next_seq: 0,
            loads_served: 0,
            stores_sunk: 0,
        }
    }

    /// The configured latency.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Accepts a request (never refuses — bandwidth is unlimited). Stores
    /// are sunk; loads are scheduled to return at `now + latency`.
    pub fn submit(&mut self, fetch: MemFetch, now: Cycle) {
        if fetch.kind.is_load() {
            self.pending.push(Due {
                at: now + self.latency,
                seq: self.next_seq,
                fetch,
            });
            self.next_seq += 1;
        } else {
            self.stores_sunk += 1;
        }
    }

    /// Takes the next response due at or before `now`, if any.
    pub fn pop_due(&mut self, now: Cycle) -> Option<MemFetch> {
        self.pop_due_at(now).map(|(_, fetch)| fetch)
    }

    /// Like [`pop_due`](FixedLatencyMemory::pop_due), but also returns
    /// the cycle the response came due. The epoch engine pre-drains every
    /// response due inside an epoch into per-core inboxes and needs the
    /// due cycle to deliver each at its serial-equivalent local cycle.
    pub fn pop_due_at(&mut self, now: Cycle) -> Option<(Cycle, MemFetch)> {
        if self.pending.peek().is_some_and(|d| d.at <= now) {
            let due = self.pending.pop()?;
            self.loads_served += 1;
            Some((due.at, due.fetch))
        } else {
            None
        }
    }

    /// True once every submitted load has been returned.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty()
    }

    /// Loads submitted but not yet returned.
    pub fn pending_responses(&self) -> usize {
        self.pending.len()
    }

    /// Every load currently awaiting its response (for wedge diagnosis).
    pub fn fetches(&self) -> impl Iterator<Item = &MemFetch> {
        self.pending.iter().map(|d| &d.fetch)
    }

    /// The earliest future cycle at which this backend can act: the due
    /// time of the next pending response (clamped to `now` if already
    /// due), or `None` when nothing is outstanding.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.pending.peek().map(|d| d.at.max(now))
    }

    /// Loads answered so far.
    pub fn loads_served(&self) -> u64 {
        self.loads_served
    }

    /// Stores absorbed so far.
    pub fn stores_sunk(&self) -> u64 {
        self.stores_sunk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumem_types::{AccessKind, CoreId, FetchId, LineAddr};

    fn fetch(id: u64, kind: AccessKind) -> MemFetch {
        MemFetch::new(FetchId::new(id), kind, LineAddr::new(id), CoreId::new(0))
    }

    #[test]
    fn loads_return_after_exact_latency() {
        let mut m = FixedLatencyMemory::new(50);
        m.submit(fetch(1, AccessKind::Load), Cycle::new(100));
        assert!(m.pop_due(Cycle::new(149)).is_none());
        let f = m.pop_due(Cycle::new(150)).unwrap();
        assert_eq!(f.id, FetchId::new(1));
        assert!(m.is_idle());
    }

    #[test]
    fn zero_latency_returns_same_cycle() {
        let mut m = FixedLatencyMemory::new(0);
        m.submit(fetch(1, AccessKind::Load), Cycle::new(7));
        assert!(m.pop_due(Cycle::new(7)).is_some());
    }

    #[test]
    fn stores_are_sunk() {
        let mut m = FixedLatencyMemory::new(10);
        m.submit(fetch(1, AccessKind::Store), Cycle::ZERO);
        assert!(m.is_idle());
        assert_eq!(m.stores_sunk(), 1);
        assert_eq!(m.loads_served(), 0);
    }

    #[test]
    fn next_event_tracks_pending_head() {
        let mut m = FixedLatencyMemory::new(30);
        assert_eq!(m.next_event(Cycle::new(5)), None);
        m.submit(fetch(1, AccessKind::Load), Cycle::new(10));
        assert_eq!(m.next_event(Cycle::new(11)), Some(Cycle::new(40)));
        // Already due: clamps to now, never the past.
        assert_eq!(m.next_event(Cycle::new(100)), Some(Cycle::new(100)));
        assert_eq!(m.pending_responses(), 1);
    }

    #[test]
    fn responses_preserve_submission_order_at_equal_latency() {
        let mut m = FixedLatencyMemory::new(5);
        for i in 0..4 {
            m.submit(fetch(i, AccessKind::Load), Cycle::ZERO);
        }
        let mut ids = Vec::new();
        while let Some(f) = m.pop_due(Cycle::new(5)) {
            ids.push(f.id.raw());
        }
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
