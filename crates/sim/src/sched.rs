//! A two-level timing wheel: the event queue behind the event-driven
//! engine in [`crate::events`].
//!
//! The wheel keeps near-future events (within `slots` cycles of the
//! current horizon) in a circular slot array indexed by `cycle mod
//! slots`, with a per-64-slot occupancy bitmap so finding the next
//! non-empty slot is a handful of `trailing_zeros` scans instead of a
//! walk over every slot — that bitmap is the wheel's second level. Events
//! beyond the window wait in a min-heap overflow and are promoted into
//! the slot array whenever the horizon advances past their epoch, so the
//! common case (components re-arming a few cycles ahead) never touches
//! the heap.
//!
//! Ordering contract, relied on by the engine for bit-identity with the
//! stepped reference: [`pop`](TimingWheel::pop) always returns the event
//! with the smallest cycle, and events scheduled for the *same* cycle
//! come back in the order they were scheduled (stable FIFO). The FIFO
//! guarantee holds across the overflow path too: an event can only sit
//! in overflow while its cycle is outside the window, and it is promoted
//! the moment the window reaches it — before any later `schedule` call
//! could append a same-cycle event directly to the slot.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// One scheduled event: `seq` is a monotone insertion stamp that makes
/// same-cycle ordering stable.
struct Pending<T> {
    cycle: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Pending<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.cycle, self.seq) == (other.cycle, other.seq)
    }
}
impl<T> Eq for Pending<T> {}
impl<T> PartialOrd for Pending<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Pending<T> {
    /// Reversed (max-heap becomes min-heap): the `BinaryHeap` overflow
    /// pops its smallest `(cycle, seq)` first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.cycle, other.seq).cmp(&(self.cycle, self.seq))
    }
}

/// A monotone min-priority queue of `(cycle, item)` events with stable
/// FIFO order within a cycle.
///
/// "Monotone" means time only moves forward: popping an event at cycle
/// `t` advances an internal horizon, and any later schedule for a cycle
/// before the horizon is clamped up to it. The event-driven engine never
/// schedules into the past, so the clamp is a safety net, not a code
/// path.
///
/// # Example
///
/// ```
/// use gpumem_sim::TimingWheel;
///
/// let mut wheel = TimingWheel::new();
/// wheel.schedule(30, "late");
/// wheel.schedule(10, "early");
/// wheel.schedule(10, "early-second");
/// assert_eq!(wheel.pop(), Some((10, "early")));
/// assert_eq!(wheel.pop(), Some((10, "early-second")));
/// assert_eq!(wheel.pop(), Some((30, "late")));
/// assert_eq!(wheel.pop(), None);
/// ```
pub struct TimingWheel<T> {
    /// Circular slot array; slot `c & mask` holds events for cycle `c`
    /// when `c` lies within `horizon .. horizon + slots.len()`.
    slots: Vec<VecDeque<Pending<T>>>,
    /// One bit per slot: set iff the slot is non-empty.
    occupied: Vec<u64>,
    /// Events at or beyond `horizon + slots.len()`.
    overflow: BinaryHeap<Pending<T>>,
    /// All queued events lie at cycles `>= horizon`.
    horizon: u64,
    next_seq: u64,
    /// Events currently in `slots` (excludes `overflow`).
    in_slots: usize,
}

/// Default window: events within 4096 cycles of the horizon go straight
/// to a slot. Partition/core re-arms are almost always a few cycles out;
/// only DRAM refresh-scale sleeps and fixed-latency returns ever overflow.
const DEFAULT_SLOTS: usize = 4096;

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimingWheel<T> {
    /// An empty wheel with the default window size.
    pub fn new() -> Self {
        Self::with_slots(DEFAULT_SLOTS)
    }

    /// An empty wheel whose direct window spans `slots` cycles, rounded
    /// up to a power of two of at least 64. Small windows exercise the
    /// overflow/promotion path and epoch wrap-around; the engine uses
    /// the default.
    pub fn with_slots(slots: usize) -> Self {
        let slots = slots.clamp(64, 1 << 20).next_power_of_two();
        TimingWheel {
            slots: (0..slots).map(|_| VecDeque::new()).collect(),
            occupied: vec![0; slots / 64],
            overflow: BinaryHeap::new(),
            horizon: 0,
            next_seq: 0,
            in_slots: 0,
        }
    }

    /// Total queued events.
    pub fn len(&self) -> usize {
        self.in_slots + self.overflow.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cycle below which no event can exist: the cycle of the last
    /// popped event, or 0 before the first pop.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    #[inline]
    fn mask(&self) -> u64 {
        self.slots.len() as u64 - 1
    }

    /// Queues `item` at `cycle`. Cycles before the horizon are clamped
    /// up to it (time is monotone; see the type docs).
    pub fn schedule(&mut self, cycle: u64, item: T) {
        let cycle = cycle.max(self.horizon);
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Pending { cycle, seq, item };
        if cycle - self.horizon < self.slots.len() as u64 {
            self.put_slot(entry);
        } else {
            self.overflow.push(entry);
        }
    }

    #[inline]
    fn put_slot(&mut self, entry: Pending<T>) {
        let idx = (entry.cycle & self.mask()) as usize;
        self.slots[idx].push_back(entry);
        self.occupied[idx / 64] |= 1u64 << (idx % 64);
        self.in_slots += 1;
    }

    /// Drops every queued event and jumps the horizon to `horizon`
    /// (monotone: it never moves backwards). Used by the engine when it
    /// re-derives the armed set directly from machine state after a
    /// dense stretch executed outside the wheel — stale entries from
    /// before the stretch would otherwise pop at past cycles.
    pub fn clear_to(&mut self, horizon: u64) {
        for slot in &mut self.slots {
            slot.clear();
        }
        for word in &mut self.occupied {
            *word = 0;
        }
        self.overflow.clear();
        self.in_slots = 0;
        self.horizon = self.horizon.max(horizon);
    }

    /// The cycle of the next event without removing it.
    pub fn peek_cycle(&self) -> Option<u64> {
        // Slot events always precede overflow events (the window invariant),
        // so the scan only consults the heap when the slots are empty.
        if self.in_slots > 0 {
            self.scan_from(self.horizon)
                .and_then(|idx| self.slots[idx].front().map(|e| e.cycle))
        } else {
            self.overflow.peek().map(|e| e.cycle)
        }
    }

    /// Removes and returns the earliest event as `(cycle, item)`; stable
    /// FIFO among events scheduled for the same cycle.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        if self.in_slots == 0 {
            // Window exhausted: jump the horizon to the overflow epoch and
            // promote everything that now fits, then fall through to the
            // slot path so ordering logic lives in one place.
            let next = self.overflow.peek().map(|e| e.cycle)?;
            self.advance(next);
        }
        let idx = self.scan_from(self.horizon)?;
        let cycle = match self.slots[idx].front() {
            Some(e) => e.cycle,
            None => return None, // unreachable: bit set implies non-empty
        };
        // Advance before extracting so same-cycle re-arms by the caller
        // land behind the remaining entries, and promotion happens before
        // any same-cycle `schedule` could jump the FIFO order.
        self.advance(cycle);
        let entry = self.slots[idx].pop_front()?;
        self.in_slots -= 1;
        if self.slots[idx].is_empty() {
            self.occupied[idx / 64] &= !(1u64 << (idx % 64));
        }
        Some((entry.cycle, entry.item))
    }

    /// Moves the horizon to `to` and promotes every overflow event that
    /// the shifted window now covers.
    fn advance(&mut self, to: u64) {
        debug_assert!(to >= self.horizon, "timing wheel ran backwards");
        self.horizon = to;
        let window = self.slots.len() as u64;
        while let Some(head) = self.overflow.peek() {
            if head.cycle - self.horizon >= window {
                break;
            }
            if let Some(entry) = self.overflow.pop() {
                self.put_slot(entry);
            }
        }
    }

    /// Index of the first occupied slot at or after `from`, searching the
    /// circular window `[from, from + slots)`. Scans the occupancy bitmap
    /// a word at a time.
    fn scan_from(&self, from: u64) -> Option<usize> {
        if self.in_slots == 0 {
            return None;
        }
        let nwords = self.occupied.len();
        let start = (from & self.mask()) as usize;
        let (w0, b0) = (start / 64, start % 64);
        // Bits at or after the horizon position within its own word.
        let high = self.occupied[w0] & (!0u64 << b0);
        if high != 0 {
            return Some(w0 * 64 + high.trailing_zeros() as usize);
        }
        // Remaining words in circular order; the wrapped-around visit of
        // `w0` keeps only the bits before the horizon position (those
        // slots hold cycles near the far end of the window).
        for step in 1..=nwords {
            let w = (w0 + step) % nwords;
            let word = if w == w0 {
                self.occupied[w0] & !(!0u64 << b0)
            } else {
                self.occupied[w]
            };
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_wheel() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(w.peek_cycle(), None);
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn pops_in_cycle_order() {
        let mut w = TimingWheel::with_slots(64);
        for (c, v) in [(5u64, 'a'), (2, 'b'), (9, 'c'), (2, 'd')] {
            w.schedule(c, v);
        }
        assert_eq!(w.peek_cycle(), Some(2));
        assert_eq!(w.pop(), Some((2, 'b')));
        assert_eq!(w.pop(), Some((2, 'd')));
        assert_eq!(w.pop(), Some((5, 'a')));
        assert_eq!(w.pop(), Some((9, 'c')));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn overflow_promotes_across_epochs() {
        let mut w = TimingWheel::with_slots(64);
        w.schedule(1_000_000, "far");
        w.schedule(3, "near");
        assert_eq!(w.len(), 2);
        assert_eq!(w.pop(), Some((3, "near")));
        assert_eq!(w.peek_cycle(), Some(1_000_000));
        assert_eq!(w.pop(), Some((1_000_000, "far")));
        assert!(w.is_empty());
    }

    #[test]
    fn overflow_precedes_direct_insert_at_same_cycle() {
        let mut w = TimingWheel::with_slots(64);
        w.schedule(100, "overflowed"); // outside the [0, 64) window
        w.schedule(1, "warm");
        assert_eq!(w.pop(), Some((1, "warm")));
        // Horizon is now 1, so 100 was promoted into the window; a direct
        // insert at the same cycle must come back after it.
        w.schedule(100, "direct");
        assert_eq!(w.pop(), Some((100, "overflowed")));
        assert_eq!(w.pop(), Some((100, "direct")));
    }

    #[test]
    fn past_schedules_clamp_to_horizon() {
        let mut w = TimingWheel::with_slots(64);
        w.schedule(10, 1);
        assert_eq!(w.pop(), Some((10, 1)));
        w.schedule(4, 2); // in the past: clamps to 10
        assert_eq!(w.pop(), Some((10, 2)));
    }

    #[test]
    fn wraps_around_the_slot_ring() {
        let mut w = TimingWheel::with_slots(64);
        // March the horizon across several full ring revolutions.
        let mut expect = Vec::new();
        for i in 0..300u64 {
            w.schedule(i * 3, i);
            expect.push((i * 3, i));
        }
        let mut got = Vec::new();
        while let Some(e) = w.pop() {
            got.push(e);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn same_cycle_rearm_during_drain_stays_fifo() {
        let mut w = TimingWheel::with_slots(64);
        w.schedule(7, 0);
        w.schedule(7, 1);
        assert_eq!(w.pop(), Some((7, 0)));
        // Re-arm at the popped cycle mid-drain: must land behind entry 1.
        w.schedule(7, 2);
        assert_eq!(w.pop(), Some((7, 1)));
        assert_eq!(w.pop(), Some((7, 2)));
    }
}
