//! Global-progress watchdog for the simulation loop.
//!
//! The budget check in [`GpuSimulator::run`](crate::GpuSimulator::run)
//! bounds *total* cycles, but a wedged machine (a blocked-port cycle, a
//! leaked MSHR entry, an injected fault that never clears) can burn the
//! whole budget making no progress at all. The [`Watchdog`] instead bounds
//! *cycles since the last observable progress*: every loop iteration hands
//! it a fingerprint of the monotone progress counters, and once the
//! fingerprint stalls for a full horizon the run aborts with a structured
//! [`WedgeDiagnosis`](gpumem_types::WedgeDiagnosis) instead of hanging.

use gpumem_types::Cycle;

/// A fingerprint of the simulator's monotone progress counters:
/// `(instructions, responses_delivered, requests_injected, next_cta)`.
///
/// Any change means the machine did something observable; queue-internal
/// shuffling that changes none of them is not progress towards completion
/// (instructions and CTAs drive `is_done`, the two traffic counters drive
/// the memory drain).
pub type ProgressFingerprint = (u64, u64, u64, u32);

/// Detects a wedged simulation by watching a progress fingerprint.
///
/// Deterministic: the verdict depends only on the observation sequence, so
/// the serial and parallel engines trip it at exactly the same cycle.
#[derive(Debug, Clone)]
pub struct Watchdog {
    horizon: u64,
    last_fingerprint: Option<ProgressFingerprint>,
    last_progress_cycle: Cycle,
}

impl Watchdog {
    /// A watchdog that trips after `horizon` consecutive cycles without a
    /// fingerprint change. A horizon of 0 is clamped to 1 (a zero horizon
    /// would trip on the very first observation of any fingerprint).
    pub fn new(horizon: u64) -> Self {
        Watchdog {
            horizon: horizon.max(1),
            last_fingerprint: None,
            last_progress_cycle: Cycle::ZERO,
        }
    }

    /// The configured no-progress horizon in cycles.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// The last cycle at which the fingerprint changed (or the first
    /// observed cycle, before any progress has been seen).
    pub fn last_progress_cycle(&self) -> Cycle {
        self.last_progress_cycle
    }

    /// Records the fingerprint at `now`; returns `true` when the machine
    /// has made no progress for at least the horizon and the run should
    /// abort with a wedge diagnosis.
    pub fn observe(&mut self, now: Cycle, fingerprint: ProgressFingerprint) -> bool {
        if self.last_fingerprint != Some(fingerprint) {
            self.last_fingerprint = Some(fingerprint);
            self.last_progress_cycle = now;
            return false;
        }
        now.since(self.last_progress_cycle) >= self.horizon
    }

    /// Closes a multi-cycle epoch the parallel engine free-ran without
    /// per-cycle observations. `fingerprint` is the value at the epoch's
    /// end boundary; `progress_at` is the cycle at which a per-cycle
    /// [`observe`](Watchdog::observe) would first have seen the epoch's
    /// last change (activity at cycle `t` shows up in the fingerprint
    /// observed at `t + 1`), or `None` if the caller could not attribute
    /// the change (then the end boundary `now` is used — never earlier
    /// than the serial engine would record, so never a spurious trip).
    ///
    /// Never trips: the engine clamps epoch length so the horizon cannot
    /// elapse strictly inside an epoch; the next boundary `observe`
    /// performs the trip check against the progress cycle recorded here.
    pub fn observe_epoch(
        &mut self,
        now: Cycle,
        fingerprint: ProgressFingerprint,
        progress_at: Option<Cycle>,
    ) {
        if self.last_fingerprint != Some(fingerprint) {
            self.last_fingerprint = Some(fingerprint);
            self.last_progress_cycle = progress_at.unwrap_or(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_only_after_a_full_horizon_without_progress() {
        let mut wd = Watchdog::new(3);
        let fp = (10, 2, 3, 1);
        assert!(!wd.observe(Cycle::new(0), fp)); // first sight = progress
        assert!(!wd.observe(Cycle::new(1), fp));
        assert!(!wd.observe(Cycle::new(2), fp));
        assert!(wd.observe(Cycle::new(3), fp));
        assert_eq!(wd.last_progress_cycle(), Cycle::new(0));
    }

    #[test]
    fn any_counter_change_resets_the_horizon() {
        let mut wd = Watchdog::new(2);
        assert!(!wd.observe(Cycle::new(0), (1, 0, 0, 0)));
        assert!(!wd.observe(Cycle::new(1), (1, 0, 0, 0)));
        // One more response delivered: progress.
        assert!(!wd.observe(Cycle::new(2), (1, 1, 0, 0)));
        assert!(!wd.observe(Cycle::new(3), (1, 1, 0, 0)));
        assert!(wd.observe(Cycle::new(4), (1, 1, 0, 0)));
        assert_eq!(wd.last_progress_cycle(), Cycle::new(2));
    }

    #[test]
    fn observe_epoch_backdates_progress_to_the_serial_cycle() {
        let mut wd = Watchdog::new(5);
        assert!(!wd.observe(Cycle::new(0), (0, 0, 0, 0)));
        // Epoch [0, 4): one instruction retired at cycle 1, which serial
        // observation would first see at cycle 2.
        wd.observe_epoch(Cycle::new(4), (1, 0, 0, 0), Some(Cycle::new(2)));
        assert_eq!(wd.last_progress_cycle(), Cycle::new(2));
        // The boundary observe sees the same fingerprint: no progress,
        // horizon measured from cycle 2 exactly as serial would.
        assert!(!wd.observe(Cycle::new(4), (1, 0, 0, 0)));
        assert!(!wd.observe(Cycle::new(6), (1, 0, 0, 0)));
        assert!(wd.observe(Cycle::new(7), (1, 0, 0, 0)));
    }

    #[test]
    fn observe_epoch_without_change_keeps_the_old_progress_cycle() {
        let mut wd = Watchdog::new(10);
        assert!(!wd.observe(Cycle::new(3), (7, 0, 0, 0)));
        wd.observe_epoch(Cycle::new(9), (7, 0, 0, 0), None);
        assert_eq!(wd.last_progress_cycle(), Cycle::new(3));
    }

    #[test]
    fn zero_horizon_is_clamped() {
        let mut wd = Watchdog::new(0);
        assert_eq!(wd.horizon(), 1);
        let fp = (0, 0, 0, 0);
        assert!(!wd.observe(Cycle::new(0), fp));
        assert!(wd.observe(Cycle::new(1), fp));
    }
}
