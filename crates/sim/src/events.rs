//! The event-driven execution engine behind [`GpuSimulator::run`].
//!
//! Instead of polling every component every cycle (the
//! `run_stepped` reference loop), a [`TimingWheel`] holds one wake-up
//! entry per component keyed by the component's own
//! `next_event(now)` protocol. The kernel pops the earliest armed cycle,
//! runs exactly the components due at it (in the same intra-cycle stage
//! order as `GpuSimulator::step`), and each component re-arms itself by
//! posting its next wake-up when it finishes. Components that sleep
//! through a window are caught up lazily with the same
//! `fast_forward`/`observe_many` closed forms the whole-machine horizon
//! jump uses, so the result is bit-identical to stepping — only the host
//! work changes.
//!
//! # Why per-component laziness wins where whole-machine skipping cannot
//!
//! The paper's own congestion thesis guarantees that fully idle cycles
//! are rare on memory-bound runs (some queue is always moving), so a
//! global horizon jump almost never engages. But *per-component* idleness
//! is pervasive: a core whose warps all wait on loads, with its LSU and
//! miss queues drained, is inert for hundreds of cycles while DRAM works;
//! a DRAM channel between bursts is inert while cores compute. This
//! engine charges each component host time only for the cycles it is
//! actually awake.
//!
//! # Correctness obligations
//!
//! * **Missed wakes are the only hazard.** A spurious wake is free
//!   (running an inert component replays exactly what stepping would
//!   have done); a missed wake diverges. Every arming rule below is
//!   therefore conservative.
//! * **Cross-component inputs arm the receiver.** `next_event` only
//!   covers a component's *own* state, so the kernel arms partitions when
//!   request-crossbar ejections appear, cores when response ejections
//!   appear, crossbars when someone injects, and the CTA dispatcher when
//!   a core frees capacity.
//! * **Same-cycle activation never re-enters the wheel.** When a stage at
//!   cycle `t` makes a *later* stage of the same cycle runnable
//!   (partition → response crossbar → core), the kernel marks it due via
//!   a per-cycle stamp; wheel entries are strictly future.

use gpumem_noc::Packet;
use gpumem_simt::SimtCore;
use gpumem_types::{host_wall_clock, CtaId, Cycle, PartitionId, SimError};

use crate::gpu::Backend;
use crate::report::HostPerf;
use crate::sched::TimingWheel;
use crate::{GpuSimulator, MemoryPartition, SimReport};

/// Component id of the CTA dispatcher (cores follow at `1 + c`).
const DISPATCH: usize = 0;

/// Host-time attribution for one event-driven run, reported by
/// [`GpuSimulator::run_profiled`] and surfaced by `repro perf --profile`.
///
/// Buckets are measured at stage boundaries inside the engine; the L1 and
/// DRAM shares are measured by hooks inside the core and partition models
/// and subtracted from their enclosing stage, so the six buckets
/// approximately partition `wall_seconds` (scheduler overhead absorbs the
/// remainder: wheel operations, arming, catch-up dispatch and the
/// end-of-run drain).
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct EngineProfile {
    /// Total wall time of the run.
    pub wall_seconds: f64,
    /// Wheel pops, arming, CTA dispatch, liveness checks and end-of-run
    /// catch-up — everything not attributed to a component stage.
    pub scheduler_seconds: f64,
    /// SIMT core stages (issue, scoreboard, LSU) excluding the L1 share.
    pub cores_seconds: f64,
    /// L1 data-cache work (hit wake-up, port access, fills).
    pub l1_seconds: f64,
    /// Request + response crossbar ticks and observation.
    pub crossbar_seconds: f64,
    /// Memory-partition stages (L2 queues, banks, MSHRs) excluding DRAM.
    pub partitions_seconds: f64,
    /// DRAM channel work (or the fixed-latency memory in fixed mode).
    pub dram_seconds: f64,
    /// Cycles the engine actually executed.
    pub executed_cycles: u64,
    /// Cycles crossed without host work.
    pub skipped_cycles: u64,
    /// Individual core-cycles run (out of `cores × executed_cycles`
    /// possible); the gap is cycles cores slept through.
    pub core_runs: u64,
    /// Individual partition-cycles run (hierarchy mode).
    pub partition_runs: u64,
    /// Request-crossbar ticks (hierarchy mode).
    pub req_xbar_ticks: u64,
    /// Response-crossbar ticks (hierarchy mode).
    pub resp_xbar_ticks: u64,
}

/// Stage buckets the engine laps its stopwatch into while profiling.
#[derive(Clone, Copy)]
enum Bucket {
    Sched,
    Cores,
    Xbar,
    Parts,
    Mem,
}

struct Prof {
    sw: gpumem_types::HostStopwatch,
    last: f64,
    sched: f64,
    cores: f64,
    xbar: f64,
    parts: f64,
    mem: f64,
}

impl Prof {
    fn new() -> Self {
        Prof {
            sw: host_wall_clock(),
            last: 0.0,
            sched: 0.0,
            cores: 0.0,
            xbar: 0.0,
            parts: 0.0,
            mem: 0.0,
        }
    }
}

/// The scheduler state of one event-driven run.
struct Kernel {
    wheel: TimingWheel<usize>,
    /// Authoritative earliest armed cycle per component; wheel entries
    /// that disagree are stale and dropped on pop.
    next_run: Vec<u64>,
    /// Per-cycle due stamp: `due[comp] == t` means component `comp` runs
    /// in its stage of the cycle currently executing.
    due: Vec<u64>,
    /// Per-component observation frontier: statistics are complete for
    /// all cycles `< synced[comp]`.
    synced: Vec<u64>,
    ncores: usize,
    /// First partition id (hierarchy mode).
    part0: usize,
    /// Request / response crossbar ids (hierarchy mode).
    req: usize,
    resp: usize,
    /// Fixed-latency memory id (fixed mode).
    mem: usize,
    prof: Option<Box<Prof>>,
    /// Per-component activity counters (cheap; kept unconditionally so
    /// the profile never perturbs what it measures).
    core_runs: u64,
    part_runs: u64,
    req_ticks: u64,
    resp_ticks: u64,
}

impl Kernel {
    fn new(ncores: usize, nparts: usize, now0: u64, profiled: bool) -> Self {
        // Hierarchy: dispatcher, cores, partitions, two crossbars.
        // Fixed: dispatcher, cores, one memory. Allocate the superset.
        let ncomp = 1 + ncores + nparts + 2;
        Kernel {
            wheel: TimingWheel::new(),
            next_run: vec![u64::MAX; ncomp],
            due: vec![u64::MAX; ncomp],
            synced: vec![now0; ncomp],
            ncores,
            part0: 1 + ncores,
            req: 1 + ncores + nparts,
            resp: 1 + ncores + nparts + 1,
            mem: 1 + ncores,
            prof: profiled.then(|| Box::new(Prof::new())),
            core_runs: 0,
            part_runs: 0,
            req_ticks: 0,
            resp_ticks: 0,
        }
    }

    /// Arms `comp` to run at cycle `at` (keeping any earlier arming).
    /// `at` must be strictly later than the cycle currently executing;
    /// same-cycle activation uses the `due` stamps instead.
    fn arm(&mut self, comp: usize, at: u64) {
        if at < self.next_run[comp] {
            self.next_run[comp] = at;
            self.wheel.schedule(at, comp);
        }
    }

    /// Arms `comp` at a component-reported event time, clamped to the
    /// next cycle (components may report "can act now").
    fn arm_event(&mut self, comp: usize, ev: Option<Cycle>, t_next: u64) {
        if let Some(ev) = ev {
            self.arm(comp, ev.raw().max(t_next));
        }
    }

    /// Pops the earliest cycle with at least one validly armed component
    /// and stamps every component due at it. `None` means the wheel holds
    /// no live event (a wedged or budget-bound machine).
    fn pop_cycle(&mut self) -> Option<u64> {
        let t = loop {
            let (cyc, comp) = self.wheel.pop()?;
            if self.next_run[comp] == cyc {
                self.due[comp] = cyc;
                self.next_run[comp] = u64::MAX;
                break cyc;
            }
        };
        while self.wheel.peek_cycle() == Some(t) {
            let Some((cyc, comp)) = self.wheel.pop() else {
                break;
            };
            if self.next_run[comp] == cyc {
                self.due[comp] = cyc;
                self.next_run[comp] = u64::MAX;
            }
        }
        Some(t)
    }

    /// Forgets every armed event and re-anchors all frontiers at `now`.
    /// Callers must have every component's statistics observed through
    /// `now` first (see [`drain_to`]); the armed set is then rebuilt from
    /// machine state by [`arm_initial`].
    fn resync(&mut self, now: u64) {
        self.wheel.clear_to(now);
        for nr in &mut self.next_run {
            *nr = u64::MAX;
        }
        for d in &mut self.due {
            *d = u64::MAX;
        }
        for s in &mut self.synced {
            *s = now;
        }
    }

    fn lap(&mut self, bucket: Bucket) {
        if let Some(p) = self.prof.as_deref_mut() {
            let t = p.sw.elapsed_seconds();
            let d = t - p.last;
            p.last = t;
            match bucket {
                Bucket::Sched => p.sched += d,
                Bucket::Cores => p.cores += d,
                Bucket::Xbar => p.xbar += d,
                Bucket::Parts => p.parts += d,
                Bucket::Mem => p.mem += d,
            }
        }
    }
}

/// Replays the gap since `core` last ran, bringing its per-cycle
/// accounting up to (but not including) cycle `t`.
fn catch_core(k: &mut Kernel, id: usize, core: &mut SimtCore, t: u64) {
    let s = k.synced[id];
    if t > s {
        core.fast_forward(Cycle::new(s), t - s);
    }
    k.synced[id] = t;
}

/// Replays the gap since `part` last ran, up to (excluding) cycle `t`.
fn catch_part(k: &mut Kernel, id: usize, part: &mut MemoryPartition, t: u64) {
    let s = k.synced[id];
    if t > s {
        part.fast_forward(Cycle::new(s), t - s);
    }
    k.synced[id] = t;
}

/// The budget-exhausted error, identical to the stepped engine's: the
/// machine state is frozen over the inert tail, so the instruction count
/// and liveness snapshot match what stepping to the budget would report.
fn budget_exhausted(sim: &GpuSimulator, max_cycles: u64) -> SimError {
    SimError::Watchdog {
        cycle: sim.now().raw().max(max_cycles),
        instructions: sim.total_instructions(),
        detail: sim.liveness_detail(),
    }
}

/// Runs `sim` to completion on the event-driven kernel.
///
/// Must only be called with no watchdog and no chaos armed (both demand
/// real per-cycle stepping; [`GpuSimulator::run`] routes those runs to
/// the stepped engine).
pub(crate) fn run_event(
    sim: &mut GpuSimulator,
    max_cycles: u64,
    profiled: bool,
) -> Result<(SimReport, Option<EngineProfile>), SimError> {
    debug_assert!(
        sim.watchdog_horizon.is_none() && sim.chaos.is_none(),
        "event engine requires per-cycle features to be disarmed"
    );
    let wall_start = host_wall_clock();
    let now0 = sim.now.raw();
    let (ncores, nparts) = match &sim.backend {
        Backend::Hierarchy { partitions, .. } => (sim.cores.len(), partitions.len()),
        Backend::Fixed(_) => (sim.cores.len(), 0),
    };
    let mut k = Kernel::new(ncores, nparts, now0, profiled);
    if profiled {
        for core in &mut sim.cores {
            core.enable_host_profile();
        }
        if let Backend::Hierarchy { partitions, .. } = &mut sim.backend {
            for p in partitions.iter_mut() {
                p.enable_host_profile();
            }
        }
    }
    arm_initial(&mut k, sim, now0);

    // Dense-phase fallback state. When nearly every component runs every
    // cycle with no skips in between, the scheduler is pure overhead —
    // the machine is congestion-bound (the paper's §III regime) and the
    // stepped fast path does the same work without wheel churn, so the
    // engine drops into `GpuSimulator::step` for a chunk, then re-derives
    // the armed set from machine state. Chunks grow geometrically while
    // the phase stays dense so long stretches amortize the re-arm scan
    // to nothing. Disabled under profiling: the profile reports the
    // event engine's own behavior, not the hybrid's.
    let active_comps = match &sim.backend {
        Backend::Hierarchy { partitions, .. } => (ncores + partitions.len() + 2) as u64,
        Backend::Fixed(_) => ncores as u64,
    };
    // Thresholds sit just above the measured break-even density (the
    // point where per-cycle kernel overhead equals the component work a
    // sleeping run saves): clearly sparse workloads keep their multi-x
    // skipping wins, everything denser runs at stepped speed instead of
    // paying overhead it cannot win back. Fixed-mode cycles are thinner,
    // so overhead bites at lower density there.
    let dense_threshold_pct: u64 = match &sim.backend {
        Backend::Hierarchy { .. } => 35,
        Backend::Fixed(_) => 30,
    };
    const DENSE_WINDOW: u64 = 32;
    const DENSE_CHUNK_MIN: u64 = 512;
    const DENSE_CHUNK_MAX: u64 = 65536;
    let mut win_cycles: u64 = 0;
    let mut win_runs: u64 = 0;
    let mut win_start: u64 = 0;
    let mut dense_chunk: u64 = DENSE_CHUNK_MIN;
    let mut last_dense_exit: u64 = u64::MAX;
    let mut dense_total: u64 = 0;

    let mut executed: u64 = 0;
    while !sim.is_done() {
        if sim.deadline_seconds.is_some() && executed.is_multiple_of(1024) {
            if let Some(budget) = sim.deadline_seconds {
                if wall_start.elapsed_seconds() > budget {
                    return Err(SimError::DeadlineExceeded {
                        cycle: sim.now.raw(),
                        budget_seconds: budget,
                    });
                }
            }
        }
        // Work remains but nothing is armed: a wedged machine. Stepping
        // would grind through inert cycles to the budget; report the same
        // watchdog directly.
        let Some(t) = k.pop_cycle() else {
            return Err(budget_exhausted(sim, max_cycles));
        };
        if t >= max_cycles {
            return Err(budget_exhausted(sim, max_cycles));
        }
        k.lap(Bucket::Sched);
        let runs_before = k.core_runs + k.part_runs + k.req_ticks + k.resp_ticks;
        exec_cycle(&mut k, sim, t)?;
        executed += 1;
        sim.now = Cycle::new(t + 1);

        // Density bookkeeping. The denominator spans *wall* cycles, not
        // executed ones, so skipped gaps (where the wheel is winning)
        // dilute the measured density and keep skip-heavy workloads in
        // event mode without any special casing.
        let runs = k.core_runs + k.part_runs + k.req_ticks + k.resp_ticks - runs_before;
        if win_cycles == 0 {
            win_start = t;
        }
        win_cycles += 1;
        win_runs += runs;
        if win_cycles < DENSE_WINDOW {
            continue;
        }
        let span = t + 1 - win_start;
        let dense = win_runs * 100 >= span * active_comps * dense_threshold_pct;
        win_cycles = 0;
        win_runs = 0;
        if !dense || k.prof.is_some() {
            continue;
        }
        // Re-entering right after the last chunk ended means the phase
        // outlasted it: double the chunk. A long event-mode stretch in
        // between means the phase ended: start small again.
        dense_chunk = if t.saturating_sub(last_dense_exit) <= 4 * DENSE_WINDOW {
            (dense_chunk * 2).min(DENSE_CHUNK_MAX)
        } else {
            DENSE_CHUNK_MIN
        };
        drain_to(&mut k, sim, t + 1);
        let target = (t + 1).saturating_add(dense_chunk).min(max_cycles);
        let dense_start = sim.now.raw();
        let mut chunk_done: u64 = 0;
        while !sim.is_done() && sim.now.raw() < target {
            if sim.deadline_seconds.is_some() && sim.stepped_cycles.is_multiple_of(1024) {
                if let Some(budget) = sim.deadline_seconds {
                    if wall_start.elapsed_seconds() > budget {
                        return Err(SimError::DeadlineExceeded {
                            cycle: sim.now.raw(),
                            budget_seconds: budget,
                        });
                    }
                }
            }
            sim.step()?;
            chunk_done += 1;
            // Periodically probe for a skippable gap: if the machine-wide
            // horizon moved well past `now`, the wheel can jump it and
            // dense stepping would grind through inert cycles instead.
            // Small gaps are not worth the exit: leaving costs a re-arm
            // scan plus a window of event-mode overhead, more than a few
            // thin cycles ever save.
            if chunk_done.is_multiple_of(64)
                && sim
                    .next_event()
                    .is_none_or(|ev| ev.raw() > sim.now.raw() + 32)
            {
                break;
            }
        }
        if sim.now.raw() < target {
            // Early exit: the phase went sparse inside the chunk, so the
            // next one starts small again.
            dense_chunk = DENSE_CHUNK_MIN;
        }
        dense_total += sim.now.raw() - dense_start;
        last_dense_exit = sim.now.raw();
        // The stepped path observed everything itself; re-anchor the
        // frontiers there so neither drain nor fast_forward replays the
        // chunk, and rebuild the armed set from live machine state.
        k.resync(sim.now.raw());
        if !sim.is_done() {
            arm_initial(&mut k, sim, sim.now.raw());
        }
        k.lap(Bucket::Sched);
    }

    // Final drain: every sleeping component replays the tail window so
    // per-cycle statistics cover exactly `now0..now`, as stepping would.
    let end = sim.now.raw();
    drain_to(&mut k, sim, end);
    sim.check_conservation()?;
    // Dense-chunk cycles were counted by `step` itself; only event-mode
    // cycles and the remaining (skipped) gap are accounted here.
    sim.stepped_cycles += executed;
    sim.skipped_cycles += (end - now0) - executed - dense_total;
    k.lap(Bucket::Sched);

    let wall = wall_start.elapsed_seconds();
    let mut report = sim.report();
    report.host = Some(HostPerf {
        wall_seconds: wall,
        cycles_per_sec: if wall > 0.0 {
            sim.now.raw() as f64 / wall
        } else {
            0.0
        },
        stepped_cycles: sim.stepped_cycles,
        skipped_cycles: sim.skipped_cycles,
        epoch_rounds: None,
        epoch_cycles: None,
        max_epoch: None,
        skipped_fraction: if sim.now.raw() > 0 {
            sim.skipped_cycles as f64 / sim.now.raw() as f64
        } else {
            0.0
        },
        threads: 1,
    });
    let profile = k.prof.take().map(|p| {
        let l1: f64 = sim.cores.iter().map(|c| c.host_l1_seconds()).sum();
        let dram: f64 = match &sim.backend {
            Backend::Hierarchy { partitions, .. } => {
                partitions.iter().map(|p| p.host_dram_seconds()).sum()
            }
            Backend::Fixed(_) => p.mem,
        };
        EngineProfile {
            wall_seconds: wall,
            scheduler_seconds: p.sched,
            cores_seconds: (p.cores - l1).max(0.0),
            l1_seconds: l1,
            crossbar_seconds: p.xbar,
            partitions_seconds: (p.parts - dram).max(0.0),
            dram_seconds: dram,
            executed_cycles: executed,
            skipped_cycles: (end - now0) - executed,
            core_runs: k.core_runs,
            partition_runs: k.part_runs,
            req_xbar_ticks: k.req_ticks,
            resp_xbar_ticks: k.resp_ticks,
        }
    });
    Ok((report, profile))
}

/// Replays every sleeping component's frozen observation window up to
/// (excluding) cycle `end`, completing per-cycle statistics for
/// `now0..end`. Used for the final drain and before entering a dense
/// stretch (where the stepped fast path observes everything itself).
fn drain_to(k: &mut Kernel, sim: &mut GpuSimulator, end: u64) {
    for (c, core) in sim.cores.iter_mut().enumerate() {
        let s = k.synced[1 + c];
        if end > s {
            core.fast_forward(Cycle::new(s), end - s);
            k.synced[1 + c] = end;
        }
    }
    match &mut sim.backend {
        Backend::Hierarchy {
            req_xbar,
            resp_xbar,
            partitions,
        } => {
            for (p, part) in partitions.iter_mut().enumerate() {
                let s = k.synced[k.part0 + p];
                if end > s {
                    part.fast_forward(Cycle::new(s), end - s);
                    k.synced[k.part0 + p] = end;
                }
            }
            if end > k.synced[k.req] {
                let s = k.synced[k.req];
                req_xbar.fast_forward(Cycle::new(s), end - s);
                k.synced[k.req] = end;
            }
            if end > k.synced[k.resp] {
                let s = k.synced[k.resp];
                resp_xbar.fast_forward(Cycle::new(s), end - s);
                k.synced[k.resp] = end;
            }
        }
        Backend::Fixed(_) => {}
    }
}

/// Arms every component that can act, directly from machine state — the
/// one place the engine pays an O(components) scan.
fn arm_initial(k: &mut Kernel, sim: &GpuSimulator, now0: u64) {
    let now = sim.now;
    if sim.next_cta < sim.program.grid_ctas() {
        k.arm(DISPATCH, now0);
    }
    for (c, core) in sim.cores.iter().enumerate() {
        if let Some(ev) = core.next_event(now) {
            k.arm(1 + c, ev.raw().max(now0));
        }
    }
    match &sim.backend {
        Backend::Hierarchy {
            req_xbar,
            resp_xbar,
            partitions,
        } => {
            for (p, part) in partitions.iter().enumerate() {
                let id = k.part0 + p;
                if let Some(ev) = part.next_event(now) {
                    k.arm(id, ev.raw().max(now0));
                }
                if req_xbar.peek_ejected(p).is_some() {
                    k.arm(id, now0);
                }
            }
            if let Some(ev) = req_xbar.next_event(now) {
                let id = k.req;
                k.arm(id, ev.raw().max(now0));
            }
            if let Some(ev) = resp_xbar.next_event(now) {
                let id = k.resp;
                k.arm(id, ev.raw().max(now0));
            }
            for c in 0..k.ncores {
                if resp_xbar.peek_ejected(c).is_some() {
                    k.arm(1 + c, now0);
                }
            }
        }
        Backend::Fixed(mem) => {
            if let Some(ev) = mem.next_event(now) {
                let id = k.mem;
                k.arm(id, ev.raw().max(now0));
            }
        }
    }
}

/// Executes cycle `t`, running exactly the components due at it in the
/// stepped engine's stage order.
fn exec_cycle(k: &mut Kernel, sim: &mut GpuSimulator, t: u64) -> Result<(), SimError> {
    let GpuSimulator {
        cfg,
        program,
        cores,
        backend,
        next_cta,
        responses_delivered,
        requests_injected,
        ..
    } = &mut *sim;
    let now = Cycle::new(t);
    let grid = program.grid_ctas();

    // CTA dispatch (stepped stage: `dispatch_ctas`, top of cycle). A core
    // receiving work is caught up first (the gap is classified at its
    // pre-assignment state, exactly as stepping would) and runs this
    // cycle — a fresh warp can issue immediately.
    if k.due[DISPATCH] == t && *next_cta < grid {
        for (c, core) in cores.iter_mut().enumerate() {
            let mut received = false;
            while *next_cta < grid && core.can_accept_cta() {
                if !received {
                    catch_core(k, 1 + c, core, t);
                    k.due[1 + c] = t;
                    received = true;
                }
                core.assign_cta(CtaId::new(*next_cta));
                *next_cta += 1;
            }
            if *next_cta >= grid {
                break;
            }
        }
    }
    k.lap(Bucket::Sched);

    match backend {
        Backend::Hierarchy {
            req_xbar,
            resp_xbar,
            partitions,
        } => {
            // Flush the crossbars' frozen-gap accounting (occupancy and
            // credit stalls) before any stage of this cycle can mutate
            // their queues.
            if t > k.synced[k.req] {
                let s = k.synced[k.req];
                req_xbar.fast_forward(Cycle::new(s), t - s);
                k.synced[k.req] = t;
            }
            if t > k.synced[k.resp] {
                let s = k.synced[k.resp];
                resp_xbar.fast_forward(Cycle::new(s), t - s);
                k.synced[k.resp] = t;
            }
            k.lap(Bucket::Xbar);

            // Memory partitions (stepped stage 1). A partition injecting
            // a response makes the response crossbar due this very cycle;
            // a leftover request ejection it could not intake re-arms it.
            for (p, part) in partitions.iter_mut().enumerate() {
                let id = k.part0 + p;
                if k.due[id] != t {
                    continue;
                }
                catch_part(k, id, part, t);
                k.part_runs += 1;
                let intaken = req_xbar.egress_mut(p).ejected_count();
                part.cycle(now, req_xbar.egress_mut(p), resp_xbar.ingress_mut(p))?;
                part.observe();
                k.synced[id] = t + 1;
                if !resp_xbar.ingress_mut(p).is_empty() {
                    k.due[k.resp] = t;
                }
                if req_xbar.egress_mut(p).ejected_count() != intaken {
                    // The partition popped its request ejection queue:
                    // credits returned, so the request crossbar can make
                    // progress at its own stage this very cycle (stepped
                    // runs partitions before the request tick).
                    k.due[k.req] = t;
                }
                let ev = part.next_event(Cycle::new(t + 1));
                k.arm_event(id, ev, t + 1);
                if req_xbar.peek_ejected(p).is_some() {
                    k.arm(id, t + 1);
                }
            }
            k.lap(Bucket::Parts);

            // Request crossbar tick (stepped stage 2). Packets it lands in
            // partition ejection queues are consumed next cycle.
            if k.due[k.req] == t {
                k.req_ticks += 1;
                req_xbar.tick(now)?;
                for p in 0..partitions.len() {
                    if req_xbar.peek_ejected(p).is_some() {
                        k.arm(k.part0 + p, t + 1);
                    }
                }
                let ev = req_xbar.next_event(Cycle::new(t + 1));
                k.arm_event(k.req, ev, t + 1);
            }

            // Response crossbar tick (stepped stage 3). Packets it lands
            // in core ejection queues are popped by cores *this* cycle.
            if k.due[k.resp] == t {
                k.resp_ticks += 1;
                resp_xbar.tick(now)?;
                for c in 0..cores.len() {
                    if resp_xbar.peek_ejected(c).is_some() {
                        k.due[1 + c] = t;
                    }
                }
                let ev = resp_xbar.next_event(Cycle::new(t + 1));
                k.arm_event(k.resp, ev, t + 1);
            }
            k.lap(Bucket::Xbar);

            // Cores (stepped stage 4): accept one response, cycle, inject
            // requests, observe — verbatim the stepped loop body.
            //
            // A crossbar that did not tick this cycle may still be mutated
            // here (response pops, request injections). Before the first
            // such mutation we charge it the credit stalls a tick would
            // have counted against the frozen pre-mutation state — the
            // stepped engine counts those at the crossbar's own stage,
            // before the cores run.
            let mut req_injected = false;
            let mut resp_popped = false;
            for (c, core) in cores.iter_mut().enumerate() {
                let id = 1 + c;
                if k.due[id] != t {
                    continue;
                }
                catch_core(k, id, core, t);
                k.core_runs += 1;
                if resp_xbar.peek_ejected(c).is_some() {
                    if !resp_popped && k.due[k.resp] != t {
                        resp_xbar.account_stalls(now);
                    }
                    resp_popped = true;
                    if let Some(pkt) = resp_xbar.pop_ejected(c) {
                        core.accept_response(pkt.fetch, now);
                        *responses_delivered += 1;
                    }
                }
                core.cycle(now);
                while core.peek_memory_request().is_some() && req_xbar.can_inject(c) {
                    if !req_injected && k.due[k.req] != t {
                        req_xbar.account_stalls(now);
                    }
                    let Some(mut fetch) = core.pop_memory_request() else {
                        break;
                    };
                    let part = (fetch.line.index() % cfg.num_partitions as u64) as usize;
                    fetch.partition = Some(PartitionId::new(part as u32));
                    fetch.timeline.icnt_inject = Some(now);
                    let bytes = fetch.request_bytes(cfg.line_bytes);
                    let pkt = Packet::new(fetch, part, bytes, cfg.noc.flit_bytes);
                    if req_xbar.try_inject(c, pkt).is_err() {
                        return Err(SimError::PortProtocol {
                            component: "core",
                            cycle: now.raw(),
                            detail: format!(
                                "request crossbar rejected core {c}'s injection after can_inject"
                            ),
                        });
                    }
                    *requests_injected += 1;
                    req_injected = true;
                }
                core.observe();
                k.synced[id] = t + 1;
                if resp_xbar.peek_ejected(c).is_some() {
                    k.arm(id, t + 1);
                }
                let ev = core.next_event(Cycle::new(t + 1));
                k.arm_event(id, ev, t + 1);
                if *next_cta < grid && core.can_accept_cta() {
                    k.arm(DISPATCH, t + 1);
                }
            }
            if req_injected {
                k.arm(k.req, t + 1);
            }
            if resp_popped {
                // Popping an ejection queue returns a credit; a response
                // crossbar that went to sleep credit-starved (or whose
                // post-tick next_event saw no credits) can arbitrate again
                // next cycle.
                k.arm(k.resp, t + 1);
            }
            k.lap(Bucket::Cores);

            // End-of-cycle observation (stepped stage 5). A crossbar that
            // neither ticked nor was mutated this cycle stays frozen; its
            // observation window is backfilled by fast_forward on the next
            // cycle that touches it. Ticked or mutated crossbars observe
            // their post-mutation state now, exactly like the stepped
            // engine's stage 5.
            if k.due[k.req] == t || req_injected {
                req_xbar.observe();
                k.synced[k.req] = t + 1;
            }
            if k.due[k.resp] == t || resp_popped {
                resp_xbar.observe();
                k.synced[k.resp] = t + 1;
            }
            k.lap(Bucket::Xbar);
        }
        Backend::Fixed(mem) => {
            // Deliver all due responses (unlimited fill bandwidth); a
            // receiving core runs this cycle.
            if k.due[k.mem] == t {
                while let Some(fetch) = mem.pop_due(now) {
                    let c = fetch.core.index();
                    catch_core(k, 1 + c, &mut cores[c], t);
                    k.due[1 + c] = t;
                    cores[c].accept_response(fetch, now);
                    *responses_delivered += 1;
                }
                let id = k.mem;
                let ev = mem.next_event(Cycle::new(t + 1));
                k.arm_event(id, ev, t + 1);
            }
            k.lap(Bucket::Mem);

            let mut submitted = false;
            for (c, core) in cores.iter_mut().enumerate() {
                let id = 1 + c;
                if k.due[id] != t {
                    continue;
                }
                catch_core(k, id, core, t);
                k.core_runs += 1;
                core.cycle(now);
                while let Some(mut fetch) = core.pop_memory_request() {
                    fetch.timeline.icnt_inject = Some(now);
                    *requests_injected += 1;
                    mem.submit(fetch, now);
                    submitted = true;
                }
                core.observe();
                k.synced[id] = t + 1;
                let ev = core.next_event(Cycle::new(t + 1));
                k.arm_event(id, ev, t + 1);
                if *next_cta < grid && core.can_accept_cta() {
                    k.arm(DISPATCH, t + 1);
                }
            }
            if submitted {
                let id = k.mem;
                let ev = mem.next_event(Cycle::new(t + 1));
                k.arm_event(id, ev, t + 1);
            }
            k.lap(Bucket::Cores);
        }
    }
    Ok(())
}
