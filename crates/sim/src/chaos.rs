//! Deterministic fault injection ("chaos") for robustness testing.
//!
//! A [`ChaosConfig`] describes a seeded schedule of transient faults —
//! crossbar port holds, in-queue reorderings, MSHR stalls, DRAM bank
//! lockouts — plus two *guaranteed* faults for self-tests: a permanent
//! wedge of the response network and an injected worker panic. The
//! [`ChaosEngine`] expands the config into per-cycle fault events using
//! forked [`SimRng`] streams, so the same seed always produces a
//! bit-identical injection schedule regardless of engine (serial,
//! event-horizon, sharded parallel) or thread count.
//!
//! Faults model *slow* hardware, never *wrong* hardware: every injected
//! condition is one the timing model can already express (a port that
//! exerts backpressure, a full MSHR table, a busy DRAM channel), so a
//! correct simulator must absorb any schedule and still conserve every
//! request — or fail loudly with a typed error / watchdog wedge diagnosis.

use gpumem_noc::IngressPort;
use gpumem_types::{Cycle, SimRng};

use crate::MemoryPartition;

/// A seeded, deterministic fault-injection schedule.
///
/// All `*_interval` fields are mean gaps in cycles between fault events of
/// that kind; `0` disables the kind. Durations are in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ChaosConfig {
    /// Root seed; every fault stream is forked from it.
    pub seed: u64,
    /// Mean cycles between transient crossbar-port holds (0 = off).
    pub port_delay_interval: u64,
    /// Cycles a held port stays frozen.
    pub port_delay_duration: u64,
    /// Mean cycles between head-of-queue rotations on an ingress port
    /// (drop-and-reinject: the head packet re-enters at the tail; 0 = off).
    pub drop_reinject_interval: u64,
    /// Mean cycles between transient MSHR stalls in a partition (0 = off).
    pub mshr_stall_interval: u64,
    /// Cycles a chaos-stalled MSHR table refuses the miss path.
    pub mshr_stall_duration: u64,
    /// Mean cycles between DRAM channel lockouts (0 = off).
    pub dram_lockout_interval: u64,
    /// Cycles a locked-out DRAM channel refuses new requests.
    pub dram_lockout_duration: u64,
    /// Permanently wedge the response network at this cycle (watchdog
    /// self-test fixture; the run can then only end via the watchdog).
    pub wedge_at: Option<u64>,
    /// Inject a worker panic at this cycle in the parallel engine
    /// (graceful-degradation fixture; ignored by the serial engines).
    pub worker_panic_at: Option<u64>,
}

impl ChaosConfig {
    /// A config with every fault disabled (the identity schedule).
    pub fn disabled(seed: u64) -> Self {
        ChaosConfig {
            seed,
            port_delay_interval: 0,
            port_delay_duration: 0,
            drop_reinject_interval: 0,
            mshr_stall_interval: 0,
            mshr_stall_duration: 0,
            dram_lockout_interval: 0,
            dram_lockout_duration: 0,
            wedge_at: None,
            worker_panic_at: None,
        }
    }

    /// The standard chaos mix used by `repro chaos` sweeps: every
    /// transient fault kind on, at staggered prime intervals so the
    /// streams never phase-lock.
    pub fn standard(seed: u64) -> Self {
        ChaosConfig {
            seed,
            port_delay_interval: 97,
            port_delay_duration: 24,
            drop_reinject_interval: 131,
            mshr_stall_interval: 181,
            mshr_stall_duration: 40,
            dram_lockout_interval: 223,
            dram_lockout_duration: 64,
            wedge_at: None,
            worker_panic_at: None,
        }
    }

    /// True when any fault (transient or guaranteed) is enabled.
    pub fn any_fault_enabled(&self) -> bool {
        self.port_delay_interval > 0
            || self.drop_reinject_interval > 0
            || self.mshr_stall_interval > 0
            || self.dram_lockout_interval > 0
            || self.wedge_at.is_some()
            || self.worker_panic_at.is_some()
    }
}

/// One kind of fault's event stream: a forked RNG producing a renewal
/// process of fire times with the configured mean gap.
#[derive(Debug, Clone)]
struct EventStream {
    rng: SimRng,
    interval: u64,
    next_at: u64,
}

impl EventStream {
    fn new(root: &SimRng, stream: u64, interval: u64) -> Self {
        let mut rng = root.fork(stream);
        let next_at = if interval == 0 {
            u64::MAX
        } else {
            gap(&mut rng, interval)
        };
        EventStream {
            rng,
            interval,
            next_at,
        }
    }

    /// Number of events due at `now` (catching up if the clock jumped).
    fn fires(&mut self, now: u64) -> u32 {
        let mut n = 0;
        while self.interval > 0 && self.next_at <= now {
            n += 1;
            self.next_at = self
                .next_at
                .saturating_add(gap(&mut self.rng, self.interval));
        }
        n
    }
}

/// Gap with mean ≈ `interval`: uniform in `[1, 2*interval]`.
fn gap(rng: &mut SimRng, interval: u64) -> u64 {
    1 + rng.gen_range(2 * interval)
}

/// Expands a [`ChaosConfig`] into concrete per-cycle fault applications.
///
/// Both engines call [`apply`](ChaosEngine::apply) exactly once per cycle
/// at the cycle start, handing over the machine's chaos touch-points in
/// global port/partition order — which is what makes the schedule
/// engine-independent and bit-identical across thread counts.
#[derive(Debug, Clone)]
pub(crate) struct ChaosEngine {
    config: ChaosConfig,
    port_delay: EventStream,
    drop_reinject: EventStream,
    mshr_stall: EventStream,
    dram_lockout: EventStream,
    /// Target selection, separate from timing so adding a fault kind never
    /// shifts another kind's schedule.
    pick: SimRng,
    wedge_applied: bool,
}

impl ChaosEngine {
    pub(crate) fn new(config: ChaosConfig) -> Self {
        let root = SimRng::new(config.seed);
        ChaosEngine {
            port_delay: EventStream::new(&root, 1, config.port_delay_interval),
            drop_reinject: EventStream::new(&root, 2, config.drop_reinject_interval),
            mshr_stall: EventStream::new(&root, 3, config.mshr_stall_interval),
            dram_lockout: EventStream::new(&root, 4, config.dram_lockout_interval),
            pick: root.fork(5),
            config,
            wedge_applied: false,
        }
    }

    /// The cycle at which a worker panic is to be injected, if any.
    pub(crate) fn worker_panic_at(&self) -> Option<u64> {
        self.config.worker_panic_at
    }

    /// The earliest cycle at which this engine can next mutate machine
    /// state: the minimum over every enabled event stream's next fire
    /// time and the wedge fixture (if not yet applied). `u64::MAX` when
    /// nothing is pending. After `apply(now, ..)` every stream's next
    /// fire is strictly past `now`, so the epoch engine can free-run
    /// through `[now + 1, next_chaos_fire())` without missing a fault.
    /// The worker-panic fixture is deliberately excluded — it belongs to
    /// the parallel harness, not the machine, and the harness clamps on
    /// it separately.
    pub(crate) fn next_chaos_fire(&self) -> u64 {
        let mut next = self
            .port_delay
            .next_at
            .min(self.drop_reinject.next_at)
            .min(self.mshr_stall.next_at)
            .min(self.dram_lockout.next_at);
        if !self.wedge_applied {
            if let Some(w) = self.config.wedge_at {
                next = next.min(w);
            }
        }
        next
    }

    /// Applies every fault due at `now`. `req_ins` / `resp_ins` are the
    /// ingress ports of the request and response crossbars and `parts` the
    /// memory partitions, each in global index order.
    pub(crate) fn apply(
        &mut self,
        now: Cycle,
        req_ins: &mut [&mut IngressPort],
        resp_ins: &mut [&mut IngressPort],
        parts: &mut [&mut MemoryPartition],
    ) {
        let t = now.raw();
        if let Some(w) = self.config.wedge_at {
            if t >= w && !self.wedge_applied {
                // Permanently freeze the whole response network: requests
                // keep flowing downstream, responses never come back — the
                // canonical wedge the watchdog must diagnose.
                for port in resp_ins.iter_mut() {
                    port.chaos_hold(Cycle::NEVER);
                }
                self.wedge_applied = true;
            }
        }
        let total_ports = req_ins.len() + resp_ins.len();
        if total_ports > 0 {
            for _ in 0..self.port_delay.fires(t) {
                let idx = self.pick.gen_range(total_ports as u64) as usize;
                let until = now + self.config.port_delay_duration;
                if idx < req_ins.len() {
                    req_ins[idx].chaos_hold(until);
                } else {
                    resp_ins[idx - req_ins.len()].chaos_hold(until);
                }
            }
            for _ in 0..self.drop_reinject.fires(t) {
                let idx = self.pick.gen_range(total_ports as u64) as usize;
                if idx < req_ins.len() {
                    req_ins[idx].chaos_rotate_head();
                } else {
                    resp_ins[idx - req_ins.len()].chaos_rotate_head();
                }
            }
        }
        if !parts.is_empty() {
            for _ in 0..self.mshr_stall.fires(t) {
                let idx = self.pick.gen_range(parts.len() as u64) as usize;
                parts[idx].chaos_stall_mshr(now + self.config.mshr_stall_duration);
            }
            for _ in 0..self.dram_lockout.fires(t) {
                let idx = self.pick.gen_range(parts.len() as u64) as usize;
                parts[idx].chaos_lock_dram(now + self.config.dram_lockout_duration);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_chaos_fire_tracks_streams_and_wedge() {
        let quiet = ChaosEngine::new(ChaosConfig::disabled(0));
        assert_eq!(quiet.next_chaos_fire(), u64::MAX);

        let mut cfg = ChaosConfig::disabled(0);
        cfg.wedge_at = Some(42);
        let mut e = ChaosEngine::new(cfg);
        assert_eq!(e.next_chaos_fire(), 42);
        e.wedge_applied = true;
        assert_eq!(e.next_chaos_fire(), u64::MAX);

        let mut e = ChaosEngine::new(ChaosConfig::standard(7));
        // Advancing every stream past `t` leaves the next fire strictly
        // in the future — the invariant the epoch clamp relies on.
        for t in 0..200 {
            e.port_delay.fires(t);
            e.drop_reinject.fires(t);
            e.mshr_stall.fires(t);
            e.dram_lockout.fires(t);
            assert!(e.next_chaos_fire() > t);
        }
    }

    /// Drains the timing streams only (no machine handles needed) and
    /// records which cycles fired which kinds.
    fn schedule_of(cfg: ChaosConfig, cycles: u64) -> Vec<(u64, u32, u32, u32, u32)> {
        let mut e = ChaosEngine::new(cfg);
        let mut events = Vec::new();
        for t in 0..cycles {
            let a = e.port_delay.fires(t);
            let b = e.drop_reinject.fires(t);
            let c = e.mshr_stall.fires(t);
            let d = e.dram_lockout.fires(t);
            if a + b + c + d > 0 {
                events.push((t, a, b, c, d));
            }
        }
        events
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = schedule_of(ChaosConfig::standard(42), 10_000);
        let b = schedule_of(ChaosConfig::standard(42), 10_000);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "standard mix must fire within 10k cycles");
    }

    #[test]
    fn different_seeds_diverge() {
        let a = schedule_of(ChaosConfig::standard(1), 10_000);
        let b = schedule_of(ChaosConfig::standard(2), 10_000);
        assert_ne!(a, b);
    }

    #[test]
    fn disabled_config_fires_nothing() {
        assert!(!ChaosConfig::disabled(7).any_fault_enabled());
        assert!(schedule_of(ChaosConfig::disabled(7), 50_000).is_empty());
    }

    #[test]
    fn intervals_gate_individual_streams() {
        let mut cfg = ChaosConfig::disabled(9);
        cfg.mshr_stall_interval = 50;
        cfg.mshr_stall_duration = 10;
        assert!(cfg.any_fault_enabled());
        let events = schedule_of(cfg, 5_000);
        assert!(!events.is_empty());
        assert!(events
            .iter()
            .all(|&(_, a, b, _, d)| a == 0 && b == 0 && d == 0));
    }

    #[test]
    fn mean_gap_is_near_the_interval() {
        let mut rng = SimRng::new(3);
        let n = 10_000u64;
        let total: u64 = (0..n).map(|_| gap(&mut rng, 100)).sum();
        let mean = total as f64 / n as f64;
        assert!((90.0..=112.0).contains(&mean), "mean gap {mean}");
    }
}
