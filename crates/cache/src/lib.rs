//! Cache substrate for the `gpumem` simulator.
//!
//! Three building blocks, each reused across the hierarchy:
//!
//! * [`TagArray`] — a set-associative tag store with true-LRU replacement,
//!   used by both the per-core L1D and the per-partition L2 banks.
//! * [`MshrTable`] — Miss Status Holding Registers with request merging.
//!   MSHR capacity is a first-order bandwidth parameter in the paper
//!   (Table I scales both L1 and L2 MSHRs 32 → 128), because exhausted
//!   MSHRs serialize subsequent misses (the paper's effect ②).
//! * [`L1Dcache`] — the per-core L1 data cache controller: non-blocking,
//!   write-through / write-no-allocate, with a bounded miss queue feeding
//!   the interconnect.
//!
//! The L2 controller lives in `gpumem-sim`'s memory-partition model because
//! it is interleaved with the partition's queues, DRAM interface and data
//! port; it is built from the same [`TagArray`] and [`MshrTable`].
//!
//! # Example
//!
//! ```
//! use gpumem_cache::{ReplacementOutcome, TagArray};
//! use gpumem_types::{Cycle, LineAddr};
//!
//! let mut tags = TagArray::new(4, 2); // 4 sets, 2-way
//! let set = 0;
//! assert!(tags.probe(set, LineAddr::new(0)).is_none());
//! let outcome = tags.fill(set, LineAddr::new(0), Cycle::new(1));
//! assert_eq!(outcome, ReplacementOutcome::FilledFree);
//! assert!(tags.probe(set, LineAddr::new(0)).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod l1;
mod mshr;
mod tag_array;

pub use l1::{L1AccessOutcome, L1BlockReason, L1Dcache, L1Stats};
pub use mshr::{MshrAllocation, MshrError, MshrTable};
pub use tag_array::{EvictedLine, ReplacementOutcome, TagArray};
