//! Miss Status Holding Registers with request merging.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use gpumem_types::LineAddr;

/// How an access was recorded in the MSHR table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrAllocation {
    /// A fresh entry was allocated: the caller must send a fill request
    /// down the hierarchy.
    NewEntry,
    /// The access was merged into an existing entry for the same line: no
    /// new downstream request is needed.
    Merged,
}

/// Why an access could not be recorded.
///
/// Both variants stall the cache pipeline at the access stage — the
/// serialization effect the paper identifies as consequence ② of high miss
/// latencies (entries are held for the full lifetime of an outstanding
/// miss, so high latency ⇒ prolonged contention of cache resources).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrError {
    /// No free entry and the line has no existing entry.
    Full,
    /// The line has an entry but its merge capacity is exhausted.
    MergeCapacity,
}

impl fmt::Display for MshrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MshrError::Full => write!(f, "mshr table full"),
            MshrError::MergeCapacity => write!(f, "mshr merge capacity exhausted"),
        }
    }
}

impl Error for MshrError {}

#[derive(Debug, Clone)]
struct Entry<W> {
    waiters: Vec<W>,
}

/// A table of Miss Status Holding Registers.
///
/// Each entry tracks one outstanding line fill; accesses to a line that is
/// already outstanding merge into the entry (up to `max_merge` per entry)
/// instead of issuing duplicate downstream requests. The waiter payload `W`
/// is caller-defined — the L1 stores the merged [`gpumem_types::MemFetch`]s
/// so it can complete all of them on fill.
///
/// # Example
///
/// ```
/// use gpumem_cache::{MshrAllocation, MshrTable};
/// use gpumem_types::LineAddr;
///
/// let mut mshr: MshrTable<&str> = MshrTable::new(2, 4);
/// let line = LineAddr::new(10);
/// assert_eq!(mshr.allocate(line, "first").unwrap(), MshrAllocation::NewEntry);
/// assert_eq!(mshr.allocate(line, "second").unwrap(), MshrAllocation::Merged);
/// assert_eq!(mshr.complete(line), vec!["first", "second"]);
/// assert!(mshr.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct MshrTable<W> {
    max_entries: usize,
    max_merge: usize,
    entries: BTreeMap<LineAddr, Entry<W>>,
    peak_occupancy: usize,
    merges: u64,
    allocations: u64,
}

impl<W> MshrTable<W> {
    /// Creates a table with `max_entries` registers, each merging at most
    /// `max_merge` accesses (including the first).
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn new(max_entries: usize, max_merge: usize) -> Self {
        assert!(max_entries > 0, "mshr entries must be positive");
        assert!(max_merge > 0, "mshr merge capacity must be positive");
        MshrTable {
            max_entries,
            max_merge,
            entries: BTreeMap::new(),
            peak_occupancy: 0,
            merges: 0,
            allocations: 0,
        }
    }

    /// Number of outstanding entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no miss is outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.max_entries
    }

    /// True if `line` already has an outstanding entry.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.contains_key(&line)
    }

    /// Whether [`allocate`](Self::allocate) would succeed for `line`.
    pub fn can_accept(&self, line: LineAddr) -> bool {
        match self.entries.get(&line) {
            Some(e) => e.waiters.len() < self.max_merge,
            None => self.entries.len() < self.max_entries,
        }
    }

    /// Records an access to `line` carrying `waiter`.
    ///
    /// # Errors
    ///
    /// [`MshrError::Full`] if a fresh entry is needed but none is free;
    /// [`MshrError::MergeCapacity`] if the line's entry cannot absorb more
    /// waiters.
    pub fn allocate(&mut self, line: LineAddr, waiter: W) -> Result<MshrAllocation, MshrError> {
        if let Some(entry) = self.entries.get_mut(&line) {
            if entry.waiters.len() >= self.max_merge {
                return Err(MshrError::MergeCapacity);
            }
            entry.waiters.push(waiter);
            self.merges += 1;
            return Ok(MshrAllocation::Merged);
        }
        if self.entries.len() >= self.max_entries {
            return Err(MshrError::Full);
        }
        self.entries.insert(
            line,
            Entry {
                waiters: vec![waiter],
            },
        );
        self.allocations += 1;
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());
        Ok(MshrAllocation::NewEntry)
    }

    /// The waiters currently merged on `line`, if it is outstanding.
    pub fn waiters_of(&self, line: LineAddr) -> Option<&[W]> {
        self.entries.get(&line).map(|e| e.waiters.as_slice())
    }

    /// Completes the outstanding miss for `line`, releasing the register
    /// and returning all merged waiters in arrival order. Returns an empty
    /// vector if the line had no entry (e.g. a stray fill).
    pub fn complete(&mut self, line: LineAddr) -> Vec<W> {
        self.entries
            .remove(&line)
            .map(|e| e.waiters)
            .unwrap_or_default()
    }

    /// Highest simultaneous occupancy seen.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Total fresh entries ever allocated.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Total merged accesses ever absorbed.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Iterates over the lines currently outstanding.
    pub fn outstanding_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.entries.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_up_and_rejects() {
        let mut m: MshrTable<u32> = MshrTable::new(2, 2);
        assert_eq!(
            m.allocate(LineAddr::new(1), 0).unwrap(),
            MshrAllocation::NewEntry
        );
        assert_eq!(
            m.allocate(LineAddr::new(2), 1).unwrap(),
            MshrAllocation::NewEntry
        );
        assert_eq!(m.allocate(LineAddr::new(3), 2), Err(MshrError::Full));
        // Merging into an existing line still works while full.
        assert_eq!(
            m.allocate(LineAddr::new(1), 3).unwrap(),
            MshrAllocation::Merged
        );
        // But merge capacity is bounded.
        assert_eq!(
            m.allocate(LineAddr::new(1), 4),
            Err(MshrError::MergeCapacity)
        );
        assert!(!m.can_accept(LineAddr::new(1)));
        assert!(m.can_accept(LineAddr::new(2)));
        assert!(!m.can_accept(LineAddr::new(9)));
    }

    #[test]
    fn complete_returns_waiters_in_order() {
        let mut m: MshrTable<&str> = MshrTable::new(4, 4);
        m.allocate(LineAddr::new(5), "a").unwrap();
        m.allocate(LineAddr::new(5), "b").unwrap();
        m.allocate(LineAddr::new(5), "c").unwrap();
        assert_eq!(m.complete(LineAddr::new(5)), vec!["a", "b", "c"]);
        assert!(m.complete(LineAddr::new(5)).is_empty());
    }

    #[test]
    fn statistics_track_activity() {
        let mut m: MshrTable<u8> = MshrTable::new(4, 4);
        m.allocate(LineAddr::new(1), 0).unwrap();
        m.allocate(LineAddr::new(2), 0).unwrap();
        m.allocate(LineAddr::new(1), 0).unwrap();
        assert_eq!(m.allocations(), 2);
        assert_eq!(m.merges(), 1);
        assert_eq!(m.peak_occupancy(), 2);
        m.complete(LineAddr::new(1));
        assert_eq!(m.len(), 1);
        assert_eq!(m.peak_occupancy(), 2);
    }

    #[test]
    fn outstanding_lines_iterates() {
        let mut m: MshrTable<u8> = MshrTable::new(4, 2);
        m.allocate(LineAddr::new(9), 0).unwrap();
        m.allocate(LineAddr::new(4), 0).unwrap();
        let lines: Vec<_> = m.outstanding_lines().collect();
        assert_eq!(lines, vec![LineAddr::new(4), LineAddr::new(9)]);
    }

    #[test]
    fn errors_display() {
        assert!(MshrError::Full.to_string().contains("full"));
        assert!(MshrError::MergeCapacity.to_string().contains("merge"));
    }
}
