//! Set-associative tag store with true-LRU replacement.

use gpumem_types::{Cycle, LineAddr};

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// The evicted line's address.
    pub line: LineAddr,
    /// Whether the line was dirty (write-back caches must write it out).
    pub dirty: bool,
}

/// What happened when a line was filled into a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementOutcome {
    /// The line was already present (fill raced with an earlier fill of the
    /// same line, e.g. an MSHR-merged refill); the existing copy was kept.
    AlreadyPresent,
    /// An invalid way was used; nothing was evicted.
    FilledFree,
    /// The LRU way was evicted to make room.
    Evicted(EvictedLine),
}

#[derive(Debug, Clone, Copy)]
struct Way {
    line: LineAddr,
    dirty: bool,
    last_use: u64,
    valid: bool,
}

impl Way {
    const INVALID: Way = Way {
        line: LineAddr::new(0),
        dirty: false,
        last_use: 0,
        valid: false,
    };
}

/// A set-associative tag array with true-LRU replacement.
///
/// The array is policy-agnostic: callers decide the set index (so the same
/// type serves L1 set mapping and the partition/bank-interleaved L2
/// mapping), and whether hits/fills mark lines dirty (write-back L2) or not
/// (write-through L1).
///
/// # Example
///
/// ```
/// use gpumem_cache::{ReplacementOutcome, TagArray};
/// use gpumem_types::{Cycle, LineAddr};
///
/// let mut tags = TagArray::new(1, 2);
/// tags.fill(0, LineAddr::new(1), Cycle::new(1));
/// tags.fill(0, LineAddr::new(2), Cycle::new(2));
/// tags.touch(0, LineAddr::new(1), Cycle::new(3)); // line 2 is now LRU
/// match tags.fill(0, LineAddr::new(3), Cycle::new(4)) {
///     ReplacementOutcome::Evicted(e) => assert_eq!(e.line, LineAddr::new(2)),
///     other => panic!("expected eviction, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct TagArray {
    sets: usize,
    assoc: usize,
    ways: Vec<Way>,
    hits: u64,
    misses: u64,
}

impl TagArray {
    /// Creates an empty tag array of `sets` × `assoc` lines.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `assoc` is zero.
    pub fn new(sets: usize, assoc: usize) -> Self {
        assert!(sets > 0, "sets must be positive");
        assert!(assoc > 0, "associativity must be positive");
        TagArray {
            sets,
            assoc,
            ways: vec![Way::INVALID; sets * assoc],
            hits: 0,
            misses: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    fn set_slice(&self, set: usize) -> &[Way] {
        &self.ways[set * self.assoc..(set + 1) * self.assoc]
    }

    fn set_slice_mut(&mut self, set: usize) -> &mut [Way] {
        &mut self.ways[set * self.assoc..(set + 1) * self.assoc]
    }

    /// Looks up `line` in `set` without updating LRU state or counters.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn probe(&self, set: usize, line: LineAddr) -> Option<usize> {
        assert!(set < self.sets, "set {set} out of range");
        self.set_slice(set)
            .iter()
            .position(|w| w.valid && w.line == line)
    }

    /// Performs a demand access: on hit, refreshes LRU and returns `true`;
    /// on miss returns `false`. Hit/miss counters are updated.
    pub fn access(&mut self, set: usize, line: LineAddr, now: Cycle) -> bool {
        if let Some(way) = self.probe(set, line) {
            self.set_slice_mut(set)[way].last_use = now.raw();
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Refreshes LRU state for a line known to be resident (no counter
    /// update). No-op if the line is absent.
    pub fn touch(&mut self, set: usize, line: LineAddr, now: Cycle) {
        if let Some(way) = self.probe(set, line) {
            self.set_slice_mut(set)[way].last_use = now.raw();
        }
    }

    /// Marks a resident line dirty (write-back caches). Returns `true` if
    /// the line was present.
    pub fn mark_dirty(&mut self, set: usize, line: LineAddr) -> bool {
        if let Some(way) = self.probe(set, line) {
            self.set_slice_mut(set)[way].dirty = true;
            true
        } else {
            false
        }
    }

    /// Returns whether a resident line is dirty, or `None` if absent.
    pub fn is_dirty(&self, set: usize, line: LineAddr) -> Option<bool> {
        self.probe(set, line)
            .map(|way| self.set_slice(set)[way].dirty)
    }

    /// Installs `line` into `set`, evicting the LRU way if no invalid way
    /// exists. The new line starts clean.
    pub fn fill(&mut self, set: usize, line: LineAddr, now: Cycle) -> ReplacementOutcome {
        if self.probe(set, line).is_some() {
            self.touch(set, line, now);
            return ReplacementOutcome::AlreadyPresent;
        }
        let assoc = self.assoc;
        let ways = self.set_slice_mut(set);
        let victim = match ways.iter().position(|w| !w.valid) {
            Some(free) => free,
            None => {
                let mut lru = 0;
                for i in 1..assoc {
                    if ways[i].last_use < ways[lru].last_use {
                        lru = i;
                    }
                }
                lru
            }
        };
        let outcome = if ways[victim].valid {
            ReplacementOutcome::Evicted(EvictedLine {
                line: ways[victim].line,
                dirty: ways[victim].dirty,
            })
        } else {
            ReplacementOutcome::FilledFree
        };
        ways[victim] = Way {
            line,
            dirty: false,
            last_use: now.raw(),
            valid: true,
        };
        outcome
    }

    /// Invalidates a resident line. Returns its eviction record if present.
    pub fn invalidate(&mut self, set: usize, line: LineAddr) -> Option<EvictedLine> {
        let way = self.probe(set, line)?;
        let w = &mut self.set_slice_mut(set)[way];
        let record = EvictedLine {
            line: w.line,
            dirty: w.dirty,
        };
        w.valid = false;
        w.dirty = false;
        Some(record)
    }

    /// Demand hits recorded by [`access`](Self::access).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses recorded by [`access`](Self::access).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of currently valid lines (for invariant checks).
    pub fn valid_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// Iterates over the valid lines of a set (for invariant checks).
    pub fn lines_in_set(&self, set: usize) -> impl Iterator<Item = LineAddr> + '_ {
        self.set_slice(set)
            .iter()
            .filter(|w| w.valid)
            .map(|w| w.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut t = TagArray::new(2, 2);
        let l = LineAddr::new(4);
        assert!(!t.access(0, l, Cycle::new(1)));
        assert_eq!(t.fill(0, l, Cycle::new(2)), ReplacementOutcome::FilledFree);
        assert!(t.access(0, l, Cycle::new(3)));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = TagArray::new(1, 3);
        for i in 0..3 {
            t.fill(0, LineAddr::new(i), Cycle::new(i));
        }
        // touch 0 and 2; 1 is LRU
        t.touch(0, LineAddr::new(0), Cycle::new(10));
        t.touch(0, LineAddr::new(2), Cycle::new(11));
        match t.fill(0, LineAddr::new(99), Cycle::new(12)) {
            ReplacementOutcome::Evicted(e) => {
                assert_eq!(e.line, LineAddr::new(1));
                assert!(!e.dirty);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn dirty_state_tracks_and_survives_until_eviction() {
        let mut t = TagArray::new(1, 1);
        let l = LineAddr::new(7);
        t.fill(0, l, Cycle::new(1));
        assert_eq!(t.is_dirty(0, l), Some(false));
        assert!(t.mark_dirty(0, l));
        assert_eq!(t.is_dirty(0, l), Some(true));
        match t.fill(0, LineAddr::new(8), Cycle::new(2)) {
            ReplacementOutcome::Evicted(e) => {
                assert_eq!(e.line, l);
                assert!(e.dirty);
            }
            other => panic!("expected dirty eviction, got {other:?}"),
        }
        // New line starts clean.
        assert_eq!(t.is_dirty(0, LineAddr::new(8)), Some(false));
    }

    #[test]
    fn duplicate_fill_is_idempotent() {
        let mut t = TagArray::new(1, 2);
        let l = LineAddr::new(3);
        t.fill(0, l, Cycle::new(1));
        assert_eq!(
            t.fill(0, l, Cycle::new(2)),
            ReplacementOutcome::AlreadyPresent
        );
        assert_eq!(t.valid_lines(), 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut t = TagArray::new(1, 2);
        let l = LineAddr::new(5);
        t.fill(0, l, Cycle::new(1));
        t.mark_dirty(0, l);
        let e = t.invalidate(0, l).unwrap();
        assert!(e.dirty);
        assert!(t.probe(0, l).is_none());
        assert_eq!(t.invalidate(0, l), None);
    }

    #[test]
    fn mark_dirty_on_absent_line_is_false() {
        let mut t = TagArray::new(1, 1);
        assert!(!t.mark_dirty(0, LineAddr::new(9)));
        assert_eq!(t.is_dirty(0, LineAddr::new(9)), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn probe_checks_set_bounds() {
        let t = TagArray::new(2, 1);
        let _ = t.probe(2, LineAddr::new(0));
    }

    #[test]
    fn no_duplicate_tags_in_set() {
        let mut t = TagArray::new(1, 4);
        for i in 0..20 {
            t.fill(0, LineAddr::new(i % 6), Cycle::new(i));
            let mut lines: Vec<_> = t.lines_in_set(0).collect();
            lines.sort_unstable();
            let before = lines.len();
            lines.dedup();
            assert_eq!(lines.len(), before, "duplicate tag in set");
            assert!(lines.len() <= 4);
        }
    }
}
