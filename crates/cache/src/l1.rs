//! The per-core L1 data cache controller.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use gpumem_config::{GpuConfig, L1Config};
use gpumem_types::{
    AccessKind, Cycle, FetchArena, LineAddr, MemFetch, QueueStats, SimQueue, SlotId,
};

use crate::{MshrTable, TagArray};

/// Why the L1 refused an access this cycle (the access must be retried).
///
/// Every variant stalls the LSU pipeline head, which in turn back-pressures
/// the core — the throttling chain the paper describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1BlockReason {
    /// A fresh MSHR entry was needed but the table is full.
    MshrFull,
    /// The line is outstanding but its MSHR merge capacity is exhausted.
    MshrMergeCapacity,
    /// The miss queue towards the interconnect is full.
    MissQueueFull,
}

/// Result of presenting one coalesced access to the L1.
#[derive(Debug)]
pub enum L1AccessOutcome {
    /// Load hit; the response will surface from
    /// [`L1Dcache::pop_ready_hits`] after the hit latency.
    Hit,
    /// Load miss; a fill request entered the miss queue (`merged == false`)
    /// or was merged into an outstanding MSHR entry (`merged == true`).
    Miss {
        /// Whether the access merged into an existing outstanding miss.
        merged: bool,
    },
    /// Store accepted into the write-through path (it will travel to L2 via
    /// the miss queue; no response will return).
    StoreAccepted,
    /// The access could not be accepted this cycle; it is handed back and
    /// must be retried.
    Blocked(MemFetch, L1BlockReason),
}

/// Counters exposed by the L1 controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct L1Stats {
    /// Load hits.
    pub load_hits: u64,
    /// Load misses (including merged ones).
    pub load_misses: u64,
    /// Misses absorbed by MSHR merging (no downstream request).
    pub merged_misses: u64,
    /// Stores accepted (write-through traffic).
    pub stores: u64,
    /// Accesses rejected because the MSHR table was full.
    pub mshr_full_stalls: u64,
    /// Accesses rejected because an entry's merge capacity was exhausted.
    pub mshr_merge_stalls: u64,
    /// Accesses rejected because the miss queue was full.
    pub miss_queue_stalls: u64,
}

impl L1Stats {
    /// Accumulates another controller's counters (for per-GPU aggregation).
    pub fn merge(&mut self, other: &L1Stats) {
        self.load_hits += other.load_hits;
        self.load_misses += other.load_misses;
        self.merged_misses += other.merged_misses;
        self.stores += other.stores;
        self.mshr_full_stalls += other.mshr_full_stalls;
        self.mshr_merge_stalls += other.mshr_merge_stalls;
        self.miss_queue_stalls += other.miss_queue_stalls;
    }

    /// Load miss rate in `[0, 1]`; 0 if no loads were seen.
    pub fn miss_rate(&self) -> f64 {
        let total = self.load_hits + self.load_misses;
        if total == 0 {
            0.0
        } else {
            self.load_misses as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct HitEntry {
    ready: Cycle,
    seq: u64,
    /// Arena slot holding the completed fetch (keeping the heap element at
    /// 24 bytes instead of carrying the whole `MemFetch` through sifts).
    slot: SlotId,
}

impl PartialEq for HitEntry {
    fn eq(&self, other: &Self) -> bool {
        self.ready == other.ready && self.seq == other.seq
    }
}
impl Eq for HitEntry {}
impl PartialOrd for HitEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HitEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-ready first.
        (other.ready, other.seq).cmp(&(self.ready, self.seq))
    }
}

/// A non-blocking, write-through / write-no-allocate L1 data cache.
///
/// Matches the GPGPU-Sim Fermi L1D: load misses allocate MSHRs and send
/// line fills through a bounded miss queue; stores always write through to
/// L2 without allocating a line; fills from the interconnect install the
/// line and release all merged accesses at once.
///
/// The owner drives it with one [`access`](L1Dcache::access) per cycle at
/// most (the L1 port), drains [`pop_ready_hits`](L1Dcache::pop_ready_hits)
/// and the miss queue, pushes interconnect responses through
/// [`fill`](L1Dcache::fill), and calls [`observe`](L1Dcache::observe) once
/// per cycle.
#[derive(Debug)]
pub struct L1Dcache {
    line_bytes: u64,
    sets: usize,
    hit_latency: u64,
    tags: TagArray,
    /// Waiters merged on an outstanding line. `None` marks the primary
    /// access — its body IS the request travelling down the hierarchy, so
    /// no copy is parked here; the returning fill reconstitutes it.
    mshr: MshrTable<Option<SlotId>>,
    miss_queue: SimQueue<MemFetch>,
    ready_hits: BinaryHeap<HitEntry>,
    /// Parked bodies of merged waiters and latency-pending hit responses.
    arena: FetchArena,
    next_seq: u64,
    stats: L1Stats,
}

impl L1Dcache {
    /// Builds an L1 from the global configuration.
    pub fn new(cfg: &GpuConfig) -> Self {
        Self::from_parts(&cfg.l1, cfg.line_bytes)
    }

    /// Builds an L1 from an [`L1Config`] and the line size.
    pub fn from_parts(l1: &L1Config, line_bytes: u64) -> Self {
        L1Dcache {
            line_bytes,
            sets: l1.sets,
            hit_latency: l1.hit_latency,
            tags: TagArray::new(l1.sets, l1.assoc),
            mshr: MshrTable::new(l1.mshr_entries, l1.mshr_merge),
            miss_queue: SimQueue::new("l1_miss", l1.miss_queue),
            ready_hits: BinaryHeap::new(),
            arena: FetchArena::with_capacity(l1.mshr_entries * l1.mshr_merge),
            next_seq: 0,
            stats: L1Stats::default(),
        }
    }

    /// The line size this cache was built with.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.index() % self.sets as u64) as usize
    }

    /// Presents one coalesced access (the L1 port accepts at most one per
    /// cycle; enforcing that is the caller's job).
    pub fn access(&mut self, mut fetch: MemFetch, now: Cycle) -> L1AccessOutcome {
        let set = self.set_of(fetch.line);
        match fetch.kind {
            AccessKind::Load => {
                if self.tags.access(set, fetch.line, now) {
                    self.stats.load_hits += 1;
                    fetch.timeline.returned = Some(now + self.hit_latency);
                    self.ready_hits.push(HitEntry {
                        ready: now + self.hit_latency,
                        seq: self.next_seq,
                        slot: self.arena.insert(fetch),
                    });
                    self.next_seq += 1;
                    return L1AccessOutcome::Hit;
                }
                // Miss path. A merge consumes no miss-queue slot; a fresh
                // entry needs both a register and queue space.
                if self.mshr.contains(fetch.line) {
                    if !self.mshr.can_accept(fetch.line) {
                        self.stats.mshr_merge_stalls += 1;
                        return L1AccessOutcome::Blocked(fetch, L1BlockReason::MshrMergeCapacity);
                    }
                    fetch.timeline.l1_miss = Some(now);
                    let line = fetch.line;
                    let slot = self.arena.insert(fetch);
                    if self.mshr.allocate(line, Some(slot)).is_err() {
                        // Unreachable after can_accept; recover the body and
                        // stall rather than panic in the model hot path.
                        let mut fetch = self.arena.take(slot);
                        fetch.timeline.l1_miss = None;
                        self.stats.mshr_merge_stalls += 1;
                        return L1AccessOutcome::Blocked(fetch, L1BlockReason::MshrMergeCapacity);
                    }
                    self.stats.load_misses += 1;
                    self.stats.merged_misses += 1;
                    return L1AccessOutcome::Miss { merged: true };
                }
                if !self.mshr.can_accept(fetch.line) {
                    self.stats.mshr_full_stalls += 1;
                    return L1AccessOutcome::Blocked(fetch, L1BlockReason::MshrFull);
                }
                if self.miss_queue.is_full() {
                    self.stats.miss_queue_stalls += 1;
                    return L1AccessOutcome::Blocked(fetch, L1BlockReason::MissQueueFull);
                }
                fetch.timeline.l1_miss = Some(now);
                self.stats.load_misses += 1;
                // The primary access is not copied: its body travels down
                // the hierarchy as the fill request and comes back through
                // `fill`, which reconstitutes it from the response.
                if self.mshr.allocate(fetch.line, None).is_err() {
                    // Unreachable after can_accept; stall rather than panic.
                    fetch.timeline.l1_miss = None;
                    self.stats.load_misses -= 1;
                    self.stats.mshr_full_stalls += 1;
                    return L1AccessOutcome::Blocked(fetch, L1BlockReason::MshrFull);
                }
                if let Err(e) = self.miss_queue.push(fetch) {
                    // Unreachable after is_full; undo the allocation and
                    // stall rather than panic.
                    let mut fetch = e.into_inner();
                    self.mshr.complete(fetch.line);
                    fetch.timeline.l1_miss = None;
                    self.stats.load_misses -= 1;
                    self.stats.miss_queue_stalls += 1;
                    return L1AccessOutcome::Blocked(fetch, L1BlockReason::MissQueueFull);
                }
                L1AccessOutcome::Miss { merged: false }
            }
            AccessKind::Store => {
                if self.miss_queue.is_full() {
                    self.stats.miss_queue_stalls += 1;
                    return L1AccessOutcome::Blocked(fetch, L1BlockReason::MissQueueFull);
                }
                // Write-through: refresh a resident line, never allocate.
                self.tags.touch(set, fetch.line, now);
                fetch.timeline.l1_miss = Some(now);
                self.stats.stores += 1;
                if let Err(e) = self.miss_queue.push(fetch) {
                    // Unreachable after is_full; stall rather than panic.
                    let mut fetch = e.into_inner();
                    fetch.timeline.l1_miss = None;
                    self.stats.stores -= 1;
                    self.stats.miss_queue_stalls += 1;
                    return L1AccessOutcome::Blocked(fetch, L1BlockReason::MissQueueFull);
                }
                L1AccessOutcome::StoreAccepted
            }
        }
    }

    /// Completed load hits whose latency has elapsed.
    pub fn pop_ready_hits(&mut self, now: Cycle) -> Vec<MemFetch> {
        let mut out = Vec::new();
        while let Some(head) = self.ready_hits.peek() {
            if head.ready > now {
                break;
            }
            let Some(entry) = self.ready_hits.pop() else {
                break;
            };
            out.push(self.arena.take(entry.slot));
        }
        out
    }

    /// The fill request at the head of the miss queue, if any.
    pub fn peek_miss(&self) -> Option<&MemFetch> {
        self.miss_queue.front()
    }

    /// Removes the head fill request (after successful injection into the
    /// interconnect).
    pub fn pop_miss(&mut self) -> Option<MemFetch> {
        self.miss_queue.pop()
    }

    /// Installs a returning line and releases every access merged on it.
    /// The returned fetches (primary + merged) are completed loads to wake
    /// warps with. Write-through means evicted lines are never dirty, so no
    /// writeback traffic is generated.
    ///
    /// Takes the response by value: the primary waiter was never copied at
    /// miss time, so the returning body itself completes it.
    pub fn fill(&mut self, fetch: MemFetch, now: Cycle) -> Vec<MemFetch> {
        let set = self.set_of(fetch.line);
        self.tags.fill(set, fetch.line, now);
        let waiters = self.mshr.complete(fetch.line);
        let mut primary = Some(fetch);
        waiters
            .into_iter()
            .filter_map(|w| {
                // Each entry holds exactly one primary; a duplicate is
                // skipped here and surfaces as a conservation failure
                // (MshrLeak) at the simulator's run-end check.
                let mut f = match w {
                    None => primary.take()?,
                    Some(slot) => self.arena.take(slot),
                };
                f.timeline.returned = Some(now);
                Some(f)
            })
            .collect()
    }

    /// Ready time of the earliest queued hit response, if any.
    pub fn next_ready_hit(&self) -> Option<Cycle> {
        self.ready_hits.peek().map(|h| h.ready)
    }

    /// Per-cycle bookkeeping (queue occupancy statistics).
    pub fn observe(&mut self) {
        self.miss_queue.observe();
    }

    /// Batch bookkeeping for `cycles` consecutive quiescent cycles (see
    /// [`SimQueue::observe_many`]).
    pub fn observe_many(&mut self, cycles: u64) {
        self.miss_queue.observe_many(cycles);
    }

    /// Activity counters.
    pub fn stats(&self) -> &L1Stats {
        &self.stats
    }

    /// Miss-queue occupancy statistics.
    pub fn miss_queue_stats(&self) -> &QueueStats {
        self.miss_queue.stats()
    }

    /// Number of outstanding MSHR entries (for stall diagnosis).
    pub fn outstanding_misses(&self) -> usize {
        self.mshr.len()
    }

    /// Current miss-queue depth (for the trace layer's occupancy probes).
    pub fn miss_queue_len(&self) -> usize {
        self.miss_queue.len()
    }

    /// Tag-array hit/miss counters (demand accesses only).
    pub fn tag_stats(&self) -> (u64, u64) {
        (self.tags.hits(), self.tags.misses())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumem_types::{CoreId, FetchId};

    fn cache() -> L1Dcache {
        let mut cfg = GpuConfig::gtx480();
        cfg.l1.hit_latency = 2;
        cfg.l1.miss_queue = 2;
        cfg.l1.mshr_entries = 2;
        cfg.l1.mshr_merge = 2;
        L1Dcache::new(&cfg)
    }

    fn load(id: u64, line: u64) -> MemFetch {
        MemFetch::new(
            FetchId::new(id),
            AccessKind::Load,
            LineAddr::new(line),
            CoreId::new(0),
        )
    }

    fn store(id: u64, line: u64) -> MemFetch {
        MemFetch::new(
            FetchId::new(id),
            AccessKind::Store,
            LineAddr::new(line),
            CoreId::new(0),
        )
    }

    #[test]
    fn cold_miss_then_fill_then_hit() {
        let mut c = cache();
        let now = Cycle::new(10);
        match c.access(load(1, 5), now) {
            L1AccessOutcome::Miss { merged: false } => {}
            other => panic!("expected cold miss, got {other:?}"),
        }
        let req = c.pop_miss().unwrap();
        assert_eq!(req.line, LineAddr::new(5));
        assert_eq!(req.timeline.l1_miss, Some(now));

        let done = c.fill(req, Cycle::new(100));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].timeline.returned, Some(Cycle::new(100)));
        assert_eq!(done[0].timeline.l1_miss_latency(), Some(90));

        match c.access(load(2, 5), Cycle::new(101)) {
            L1AccessOutcome::Hit => {}
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(c.pop_ready_hits(Cycle::new(102)).is_empty());
        let hits = c.pop_ready_hits(Cycle::new(103));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, FetchId::new(2));
    }

    #[test]
    fn merged_misses_consume_no_miss_queue() {
        let mut c = cache();
        let now = Cycle::new(0);
        c.access(load(1, 7), now);
        match c.access(load(2, 7), now) {
            L1AccessOutcome::Miss { merged: true } => {}
            other => panic!("expected merge, got {other:?}"),
        }
        // Only one downstream request.
        let req = c.pop_miss().unwrap();
        assert!(c.pop_miss().is_none());
        // Fill releases both.
        let done = c.fill(req, Cycle::new(50));
        assert_eq!(done.len(), 2);
        assert_eq!(c.stats().merged_misses, 1);
    }

    #[test]
    fn mshr_full_blocks_new_lines() {
        let mut c = cache();
        let now = Cycle::new(0);
        c.access(load(1, 1), now);
        c.access(load(2, 2), now);
        match c.access(load(3, 3), now) {
            L1AccessOutcome::Blocked(f, L1BlockReason::MshrFull) => {
                assert_eq!(f.id, FetchId::new(3));
            }
            other => panic!("expected mshr-full block, got {other:?}"),
        }
        assert_eq!(c.stats().mshr_full_stalls, 1);
    }

    #[test]
    fn merge_capacity_blocks() {
        let mut c = cache();
        let now = Cycle::new(0);
        c.access(load(1, 1), now);
        c.access(load(2, 1), now); // merge #2 fills capacity (max_merge = 2)
        match c.access(load(3, 1), now) {
            L1AccessOutcome::Blocked(_, L1BlockReason::MshrMergeCapacity) => {}
            other => panic!("expected merge-capacity block, got {other:?}"),
        }
    }

    #[test]
    fn miss_queue_full_blocks_even_with_free_mshrs() {
        let mut cfg = GpuConfig::gtx480();
        cfg.l1.miss_queue = 1;
        let mut c = L1Dcache::new(&cfg);
        let now = Cycle::new(0);
        c.access(load(1, 1), now);
        match c.access(load(2, 2), now) {
            L1AccessOutcome::Blocked(_, L1BlockReason::MissQueueFull) => {}
            other => panic!("expected miss-queue block, got {other:?}"),
        }
        assert_eq!(c.stats().miss_queue_stalls, 1);
    }

    #[test]
    fn stores_write_through_without_allocating() {
        let mut c = cache();
        let now = Cycle::new(0);
        match c.access(store(1, 9), now) {
            L1AccessOutcome::StoreAccepted => {}
            other => panic!("expected store accept, got {other:?}"),
        }
        // The store travelled to the miss queue but did not allocate a line
        // or an MSHR.
        assert_eq!(c.outstanding_misses(), 0);
        assert!(c.pop_miss().is_some());
        // A subsequent load to the same line still misses.
        match c.access(load(2, 9), now) {
            L1AccessOutcome::Miss { merged: false } => {}
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn hit_ordering_is_by_ready_time() {
        let mut c = cache();
        // Install two lines.
        for (id, line) in [(1, 1), (2, 2)] {
            c.access(load(id, line), Cycle::new(0));
            let req = c.pop_miss().unwrap();
            c.fill(req, Cycle::new(1));
        }
        c.access(load(10, 1), Cycle::new(5));
        c.access(load(11, 2), Cycle::new(6));
        let ready = c.pop_ready_hits(Cycle::new(8));
        assert_eq!(ready.len(), 2);
        assert_eq!(ready[0].id, FetchId::new(10));
        assert_eq!(ready[1].id, FetchId::new(11));
    }

    #[test]
    fn stats_miss_rate() {
        let mut c = cache();
        c.access(load(1, 1), Cycle::new(0));
        let req = c.pop_miss().unwrap();
        c.fill(req, Cycle::new(1));
        c.access(load(2, 1), Cycle::new(2));
        assert_eq!(c.stats().miss_rate(), 0.5);
        assert_eq!(L1Stats::default().miss_rate(), 0.0);
    }
}
