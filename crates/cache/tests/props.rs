//! Property tests for the cache substrate.

use std::collections::{HashMap, HashSet};

use gpumem_cache::{L1AccessOutcome, L1Dcache, MshrTable, ReplacementOutcome, TagArray};
use gpumem_config::GpuConfig;
use gpumem_types::{AccessKind, CoreId, Cycle, FetchId, LineAddr, MemFetch};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum TagOp {
    Access(u64),
    Fill(u64),
    Dirty(u64),
    Invalidate(u64),
}

fn tag_ops() -> impl Strategy<Value = Vec<TagOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..64).prop_map(TagOp::Access),
            (0u64..64).prop_map(TagOp::Fill),
            (0u64..64).prop_map(TagOp::Dirty),
            (0u64..64).prop_map(TagOp::Invalidate),
        ],
        0..300,
    )
}

proptest! {
    /// Tag-array invariants: no duplicate tags within a set, valid lines
    /// never exceed capacity, and a line reported resident really was
    /// filled and not yet evicted (tracked by a model set).
    #[test]
    fn tag_array_consistency(sets_log in 0u32..4, assoc in 1usize..8, ops in tag_ops()) {
        let sets = 1usize << sets_log;
        let mut tags = TagArray::new(sets, assoc);
        let mut resident: HashSet<u64> = HashSet::new();
        let mut now = Cycle::ZERO;
        for op in ops {
            now = now.next();
            match op {
                TagOp::Access(l) => {
                    let set = (l % sets as u64) as usize;
                    let hit = tags.access(set, LineAddr::new(l), now);
                    prop_assert_eq!(hit, resident.contains(&l), "line {}", l);
                }
                TagOp::Fill(l) => {
                    let set = (l % sets as u64) as usize;
                    match tags.fill(set, LineAddr::new(l), now) {
                        ReplacementOutcome::Evicted(e) => {
                            prop_assert!(resident.remove(&e.line.index()));
                        }
                        ReplacementOutcome::FilledFree => {}
                        ReplacementOutcome::AlreadyPresent => {
                            prop_assert!(resident.contains(&l));
                        }
                    }
                    resident.insert(l);
                }
                TagOp::Dirty(l) => {
                    let set = (l % sets as u64) as usize;
                    let marked = tags.mark_dirty(set, LineAddr::new(l));
                    prop_assert_eq!(marked, resident.contains(&l));
                }
                TagOp::Invalidate(l) => {
                    let set = (l % sets as u64) as usize;
                    let evicted = tags.invalidate(set, LineAddr::new(l));
                    prop_assert_eq!(evicted.is_some(), resident.remove(&l));
                }
            }
            prop_assert!(tags.valid_lines() <= sets * assoc);
            prop_assert_eq!(tags.valid_lines(), resident.len());
            for set in 0..sets {
                let mut seen = HashSet::new();
                for line in tags.lines_in_set(set) {
                    prop_assert!(seen.insert(line), "duplicate tag {line}");
                    prop_assert_eq!((line.index() % sets as u64) as usize, set);
                }
            }
        }
    }

    /// MSHR: waiters are conserved — everything allocated is returned by
    /// exactly one complete() — and capacities are enforced.
    #[test]
    fn mshr_conserves_waiters(
        entries in 1usize..8,
        merge in 1usize..6,
        ops in prop::collection::vec((0u64..16, any::<bool>()), 0..200),
    ) {
        let mut mshr: MshrTable<u64> = MshrTable::new(entries, merge);
        let mut model: HashMap<u64, Vec<u64>> = HashMap::new();
        let mut next_waiter = 0u64;
        let mut allocated: u64 = 0;
        let mut returned: u64 = 0;
        for (line, complete) in ops {
            let addr = LineAddr::new(line);
            if complete {
                let got = mshr.complete(addr);
                let expect = model.remove(&line).unwrap_or_default();
                prop_assert_eq!(&got, &expect);
                returned += got.len() as u64;
            } else {
                let can = mshr.can_accept(addr);
                let res = mshr.allocate(addr, next_waiter);
                prop_assert_eq!(can, res.is_ok());
                if res.is_ok() {
                    model.entry(line).or_default().push(next_waiter);
                    allocated += 1;
                    next_waiter += 1;
                }
            }
            prop_assert!(mshr.len() <= entries);
            prop_assert_eq!(mshr.len(), model.len());
        }
        for (line, expect) in model {
            let got = mshr.complete(LineAddr::new(line));
            prop_assert_eq!(&got, &expect);
            returned += got.len() as u64;
        }
        prop_assert_eq!(allocated, returned);
        prop_assert!(mshr.is_empty());
    }

    /// L1 controller: every accepted load eventually completes exactly
    /// once when the memory below responds to every request.
    #[test]
    fn l1_loads_complete_exactly_once(
        lines in prop::collection::vec(0u64..40, 1..80),
        stores in prop::collection::vec(any::<bool>(), 1..80),
    ) {
        let mut cfg = GpuConfig::gtx480();
        cfg.l1.hit_latency = 2;
        let mut l1 = L1Dcache::new(&cfg);
        let mut now = Cycle::ZERO;
        let mut accepted_loads = 0u64;
        let mut completed = 0u64;
        let mut inflight: Vec<MemFetch> = Vec::new();

        for (i, &line) in lines.iter().enumerate() {
            let id = i as u64;
            now += 1;
            let kind = if stores[i % stores.len()] {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let fetch = MemFetch::new(FetchId::new(id), kind, LineAddr::new(line), CoreId::new(0));
            match l1.access(fetch, now) {
                L1AccessOutcome::Hit | L1AccessOutcome::Miss { .. } => {
                    if kind == AccessKind::Load {
                        accepted_loads += 1;
                    }
                }
                L1AccessOutcome::StoreAccepted => {}
                L1AccessOutcome::Blocked(_, _) => {
                    // Drain the miss queue and respond to make progress.
                }
            }
            while let Some(req) = l1.pop_miss() {
                if req.kind == AccessKind::Load {
                    inflight.push(req);
                }
            }
            // Respond to one outstanding request per step.
            if let Some(req) = inflight.pop() {
                now += 1;
                completed += l1.fill(req, now).len() as u64;
            }
            completed += l1.pop_ready_hits(now).len() as u64;
        }
        // Drain everything left.
        for req in inflight {
            now += 1;
            completed += l1.fill(req, now).len() as u64;
        }
        now += 100;
        completed += l1.pop_ready_hits(now).len() as u64;
        prop_assert_eq!(completed, accepted_loads);
        prop_assert_eq!(l1.outstanding_misses(), 0);
    }
}
