//! Parameters describing a synthetic workload's memory demand profile.

use serde::{Deserialize, Serialize};

/// How a workload's global loads address memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Consecutive lines per warp across iterations — fully coalesced
    /// streaming (nn).
    Streaming,
    /// Constant-stride walks, as in row/column transforms (dwt2d, nw).
    Strided {
        /// Stride between consecutive iterations, in lines.
        stride: u64,
    },
    /// Data-dependent gathers across the working set (cfd, sc).
    Gather,
    /// Streaming base plus fixed plane offsets, as in structured-grid
    /// stencils (lbm).
    Stencil {
        /// Distance between planes, in lines.
        plane: u64,
    },
}

/// Full parameterisation of a [`crate::SyntheticKernel`].
///
/// Every field is a knob with a direct architectural meaning; the eight
/// benchmark models in [`crate::benchmarks`] are instances of this struct.
///
/// # Example
///
/// ```
/// use gpumem_workloads::{SyntheticKernel, WorkloadParams};
/// use gpumem_simt::KernelProgram;
///
/// let mut p = WorkloadParams::template("custom");
/// p.iters = 4;
/// p.loads_per_iter = 1;
/// let k = SyntheticKernel::new(p);
/// assert_eq!(k.name(), "custom");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadParams {
    /// Benchmark name used in reports.
    pub name: String,
    /// CTAs in the launch grid.
    pub ctas: u32,
    /// Warps per CTA.
    pub warps_per_cta: u32,
    /// Occupancy limit per core (models register/shared-memory pressure).
    pub max_ctas_per_core: usize,
    /// Main-loop iterations per warp.
    pub iters: u32,
    /// ALU instructions per iteration.
    pub alu_per_iter: u32,
    /// Latency of each ALU instruction.
    pub alu_latency: u32,
    /// Shared-memory instructions per iteration.
    pub shared_per_iter: u32,
    /// Latency of each shared-memory instruction (incl. bank conflicts).
    pub shared_latency: u32,
    /// Global loads per iteration.
    pub loads_per_iter: u32,
    /// Global stores per iteration.
    pub stores_per_iter: u32,
    /// Coalescing: min distinct lines per load (1 = fully coalesced).
    pub lines_per_load_min: u32,
    /// Coalescing: max distinct lines per load (32 = fully divergent).
    pub lines_per_load_max: u32,
    /// Instruction distance from a load to its first use (MLP /
    /// latency-tolerance knob).
    pub consume_distance: u32,
    /// Addressing pattern.
    pub pattern: AccessPattern,
    /// Working-set size in cache lines.
    pub working_set_lines: u64,
    /// Probability that a load targets the hot region instead of its
    /// pattern address (models inter-warp reuse caught by the L2).
    pub reuse_fraction: f64,
    /// Probability that a load re-reads one of the warp's own
    /// previous-iteration lines (models intra-warp temporal locality
    /// caught by the L1).
    pub l1_reuse_fraction: f64,
    /// Hot-region size in lines (should exceed one L1 but fit in L2 for
    /// L2-reuse behaviour).
    pub hot_lines: u64,
    /// Execute a CTA barrier every N iterations (None = no barriers).
    pub barrier_every: Option<u32>,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
}

impl WorkloadParams {
    /// A neutral starting point for custom workloads: moderate size,
    /// streaming, fully coalesced, no reuse, no barriers.
    pub fn template(name: &str) -> Self {
        WorkloadParams {
            name: name.to_owned(),
            ctas: 30,
            warps_per_cta: 8,
            max_ctas_per_core: 8,
            iters: 16,
            alu_per_iter: 6,
            alu_latency: 4,
            shared_per_iter: 0,
            shared_latency: 24,
            loads_per_iter: 2,
            stores_per_iter: 0,
            lines_per_load_min: 1,
            lines_per_load_max: 1,
            consume_distance: 2,
            pattern: AccessPattern::Streaming,
            working_set_lines: 50_000,
            reuse_fraction: 0.0,
            l1_reuse_fraction: 0.0,
            hot_lines: 2_048,
            barrier_every: None,
            seed: 0xC0FFEE,
        }
    }

    /// Instructions in one loop iteration. When barriers are configured
    /// the iteration carries a synchronization slot, which holds a barrier
    /// on matching iterations and a filler ALU op otherwise.
    pub fn instrs_per_iter(&self) -> u32 {
        self.loads_per_iter
            + self.alu_per_iter
            + self.shared_per_iter
            + self.stores_per_iter
            + u32::from(self.barrier_every.is_some())
    }

    /// Approximate total warp instructions the kernel will retire.
    pub fn approx_total_instructions(&self) -> u64 {
        u64::from(self.ctas)
            * u64::from(self.warps_per_cta)
            * u64::from(self.iters)
            * u64::from(self.instrs_per_iter())
    }

    /// Scales the amount of work (grid and iterations) by `factor`,
    /// keeping the per-iteration behaviour identical. Used to produce fast
    /// variants for unit tests and Criterion benches.
    pub fn scaled(&self, factor: f64) -> Self {
        let mut p = self.clone();
        p.ctas = ((f64::from(self.ctas) * factor).round() as u32).max(1);
        p.iters = ((f64::from(self.iters) * factor.sqrt()).round() as u32).max(1);
        p
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on zero grid/warps/iterations, an empty instruction body,
    /// inverted coalescing bounds, or an out-of-range reuse fraction.
    pub fn validate(&self) {
        assert!(self.ctas > 0, "{}: ctas must be positive", self.name);
        assert!(
            self.warps_per_cta > 0,
            "{}: warps_per_cta must be positive",
            self.name
        );
        assert!(self.iters > 0, "{}: iters must be positive", self.name);
        assert!(
            self.instrs_per_iter() > 0,
            "{}: iteration body must not be empty",
            self.name
        );
        assert!(
            self.lines_per_load_min >= 1 && self.lines_per_load_min <= self.lines_per_load_max,
            "{}: coalescing bounds invalid",
            self.name
        );
        assert!(
            self.lines_per_load_max <= 32,
            "{}: a warp has 32 lanes",
            self.name
        );
        assert!(
            (0.0..=1.0).contains(&self.reuse_fraction),
            "{}: reuse fraction out of range",
            self.name
        );
        assert!(
            (0.0..=1.0).contains(&self.l1_reuse_fraction),
            "{}: L1 reuse fraction out of range",
            self.name
        );
        assert!(
            self.working_set_lines > 0,
            "{}: empty working set",
            self.name
        );
        assert!(self.hot_lines > 0, "{}: empty hot region", self.name);
        if let Some(n) = self.barrier_every {
            assert!(n > 0, "{}: barrier_every must be positive", self.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_is_valid() {
        WorkloadParams::template("t").validate();
    }

    #[test]
    fn instr_counting() {
        let mut p = WorkloadParams::template("t");
        p.loads_per_iter = 2;
        p.alu_per_iter = 3;
        p.shared_per_iter = 1;
        p.stores_per_iter = 1;
        p.barrier_every = Some(1);
        assert_eq!(p.instrs_per_iter(), 8);
        p.barrier_every = None;
        assert_eq!(p.instrs_per_iter(), 7);
    }

    #[test]
    fn scaled_shrinks_work() {
        let p = WorkloadParams::template("t");
        let s = p.scaled(0.25);
        assert!(s.ctas < p.ctas);
        assert!(s.iters <= p.iters);
        assert!(s.ctas >= 1 && s.iters >= 1);
        s.validate();
    }

    #[test]
    #[should_panic(expected = "coalescing bounds invalid")]
    fn validate_rejects_inverted_bounds() {
        let mut p = WorkloadParams::template("t");
        p.lines_per_load_min = 4;
        p.lines_per_load_max = 2;
        p.validate();
    }

    #[test]
    #[should_panic(expected = "32 lanes")]
    fn validate_rejects_excess_divergence() {
        let mut p = WorkloadParams::template("t");
        p.lines_per_load_max = 64;
        p.validate();
    }
}
