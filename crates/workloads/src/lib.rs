//! Synthetic GPGPU benchmark models for the `gpumem` simulator.
//!
//! The paper characterizes eight memory-intensive benchmarks from
//! Rodinia/Parboil — **cfd, dwt2d, leukocyte, nn, nw, sc (streamcluster),
//! lbm, ss** — running on GPGPU-Sim. We cannot execute their CUDA binaries,
//! so each benchmark is modelled as a [`SyntheticKernel`]: a procedurally
//! generated warp instruction stream whose *memory demand profile*
//! (arithmetic intensity, coalescing degree, access pattern, working-set
//! size, reuse, store ratio, barrier structure) is parameterised to match
//! the benchmark's published characterization. DESIGN.md documents this
//! substitution; EXPERIMENTS.md reports its effect.
//!
//! # Example
//!
//! ```
//! use gpumem_workloads::{benchmarks, by_name};
//! use gpumem_simt::KernelProgram;
//!
//! let all = benchmarks();
//! assert_eq!(all.len(), 8);
//! let nn = by_name("nn").expect("known benchmark");
//! assert!(nn.grid_ctas() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kind;
mod ml;
mod params;
mod suite;
mod synthetic;

pub use kind::WorkloadKind;
pub use ml::{attn, conv, gemm, ML_BENCHMARK_NAMES};
pub use params::{AccessPattern, WorkloadParams};
pub use suite::{benchmarks, by_name, extended_names, params_of, BENCHMARK_NAMES};
pub use synthetic::SyntheticKernel;
