//! A workload from either frontend — synthetic generator or decoded
//! trace — behind one constructor for the simulation engines.

use std::sync::Arc;

use gpumem_simt::KernelProgram;
use gpumem_tracefmt::TracedKernel;

use crate::{SyntheticKernel, WorkloadParams};

/// One runnable workload, from either of the two frontends.
///
/// The simulator consumes an `Arc<dyn KernelProgram>`; this enum is the
/// seam where the two ways of producing one meet, so orchestration code
/// (the sweep runner, the CLI) can carry "a workload" without caring
/// which frontend it came from.
///
/// Cloning is cheap for traces (the decoded kernel is shared) and cheap
/// enough for synthetics (parameters only — the kernel is built on
/// [`program`](WorkloadKind::program)).
#[derive(Debug, Clone)]
pub enum WorkloadKind {
    /// A procedurally generated kernel, described by its parameters.
    Synthetic(WorkloadParams),
    /// A kernel decoded from a `gpumem-trace v1` file.
    Traced(Arc<TracedKernel>),
}

impl WorkloadKind {
    /// The workload's kernel name.
    pub fn name(&self) -> &str {
        match self {
            WorkloadKind::Synthetic(p) => &p.name,
            WorkloadKind::Traced(k) => k.as_ref().name(),
        }
    }

    /// Instantiates the kernel the engines will run.
    ///
    /// Both arms produce pure, repeatedly-callable programs, so a traced
    /// workload replays bit-identically across the event, stepped and
    /// parallel engines exactly like a synthetic one.
    pub fn program(&self) -> Arc<dyn KernelProgram> {
        match self {
            WorkloadKind::Synthetic(p) => Arc::new(SyntheticKernel::new(p.clone())),
            WorkloadKind::Traced(k) => Arc::clone(k) as Arc<dyn KernelProgram>,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumem_tracefmt::{encode_program, parse_str};
    use gpumem_types::CtaId;

    #[test]
    fn both_arms_produce_the_same_program() {
        let params = crate::params_of("nw").expect("known benchmark");
        let synth = WorkloadKind::Synthetic(params.clone());
        let text = encode_program(synth.program().as_ref(), 128).expect("encodes");
        let traced = WorkloadKind::Traced(Arc::new(parse_str(&text).expect("decodes")));

        assert_eq!(synth.name(), "nw");
        assert_eq!(traced.name(), "nw");
        let (a, b) = (synth.program(), traced.program());
        assert_eq!(a.grid_ctas(), b.grid_ctas());
        assert_eq!(a.warps_per_cta(), b.warps_per_cta());
        assert_eq!(a.max_ctas_per_core(), b.max_ctas_per_core());
        for cta in 0..a.grid_ctas() {
            for warp in 0..a.warps_per_cta() {
                let id = CtaId::new(cta);
                assert_eq!(a.warp_instr_count(id, warp), b.warp_instr_count(id, warp));
                let n = a.warp_instr_count(id, warp).expect("in grid");
                for pc in 0..=n {
                    assert_eq!(a.instr(id, warp, pc), b.instr(id, warp, pc));
                }
            }
        }
    }
}
