//! The paper's benchmark suite: eight synthetic models.
//!
//! Each model is parameterised from the benchmark's published behaviour
//! (Rodinia/Parboil characterizations and the paper's own observations).
//! The parameters that matter for the paper's experiments are arithmetic
//! intensity, coalescing, working-set size, reuse, store ratio, barrier
//! structure and the load→use distance (latency tolerance).

use std::sync::Arc;

use gpumem_simt::KernelProgram;

use crate::{AccessPattern, SyntheticKernel, WorkloadParams};

/// The benchmark names, in the paper's Fig. 1 legend order.
pub const BENCHMARK_NAMES: [&str; 8] = ["cfd", "dwt2d", "leukocyte", "nn", "nw", "sc", "lbm", "ss"];

/// Rodinia `cfd` (Euler3D): unstructured-grid CFD solver. Neighbour
/// gathers give poorly-coalesced, memory-intensive behaviour with moderate
/// inter-cell reuse.
fn cfd() -> WorkloadParams {
    WorkloadParams {
        name: "cfd".into(),
        ctas: 60,
        warps_per_cta: 8,
        max_ctas_per_core: 2,
        iters: 24,
        alu_per_iter: 10,
        alu_latency: 4,
        shared_per_iter: 0,
        shared_latency: 24,
        loads_per_iter: 3,
        stores_per_iter: 2,
        lines_per_load_min: 2,
        lines_per_load_max: 4,
        consume_distance: 1,
        pattern: AccessPattern::Gather,
        working_set_lines: 96_000,
        l1_reuse_fraction: 0.25,
        reuse_fraction: 0.30,
        hot_lines: 3_000,
        barrier_every: None,
        seed: 0xCFD0,
    }
}

/// Rodinia `dwt2d`: 2-D discrete wavelet transform. Row/column passes give
/// strided, moderately-coalesced accesses with medium compute.
fn dwt2d() -> WorkloadParams {
    WorkloadParams {
        name: "dwt2d".into(),
        ctas: 48,
        warps_per_cta: 8,
        max_ctas_per_core: 2,
        iters: 20,
        alu_per_iter: 11,
        alu_latency: 4,
        shared_per_iter: 0,
        shared_latency: 24,
        loads_per_iter: 2,
        stores_per_iter: 2,
        lines_per_load_min: 1,
        lines_per_load_max: 2,
        consume_distance: 2,
        pattern: AccessPattern::Strided { stride: 64 },
        working_set_lines: 48_000,
        l1_reuse_fraction: 0.40,
        reuse_fraction: 0.20,
        hot_lines: 2_048,
        barrier_every: None,
        seed: 0xD2D0,
    }
}

/// Rodinia `leukocyte`: cell tracking. Dominated by per-pixel arithmetic
/// and shared-memory tiles; high reuse and long independent ALU chains make
/// it the suite's most latency-tolerant member.
fn leukocyte() -> WorkloadParams {
    WorkloadParams {
        name: "leukocyte".into(),
        ctas: 45,
        warps_per_cta: 8,
        max_ctas_per_core: 3,
        iters: 18,
        alu_per_iter: 24,
        alu_latency: 5,
        shared_per_iter: 4,
        shared_latency: 24,
        loads_per_iter: 1,
        stores_per_iter: 0,
        lines_per_load_min: 1,
        lines_per_load_max: 1,
        consume_distance: 4,
        pattern: AccessPattern::Streaming,
        working_set_lines: 12_000,
        l1_reuse_fraction: 0.60,
        reuse_fraction: 0.55,
        hot_lines: 1_500,
        barrier_every: Some(6),
        seed: 0x1E00,
    }
}

/// Rodinia `nn` (nearest neighbor): a single streaming pass with almost no
/// compute per load — purely memory-bandwidth-bound.
fn nn() -> WorkloadParams {
    WorkloadParams {
        name: "nn".into(),
        ctas: 90,
        warps_per_cta: 8,
        max_ctas_per_core: 2,
        iters: 16,
        alu_per_iter: 6,
        alu_latency: 4,
        shared_per_iter: 0,
        shared_latency: 24,
        loads_per_iter: 3,
        stores_per_iter: 0,
        lines_per_load_min: 1,
        lines_per_load_max: 1,
        consume_distance: 1,
        pattern: AccessPattern::Streaming,
        working_set_lines: 300_000,
        l1_reuse_fraction: 0.10,
        reuse_fraction: 0.0,
        hot_lines: 1,
        barrier_every: None,
        seed: 0x0990,
    }
}

/// Rodinia `nw` (Needleman-Wunsch): wavefront dynamic programming.
/// Per-iteration barriers and one CTA per core leave little parallelism to
/// hide latency — the classic latency-bound benchmark.
fn nw() -> WorkloadParams {
    WorkloadParams {
        name: "nw".into(),
        ctas: 15,
        warps_per_cta: 4,
        max_ctas_per_core: 1,
        iters: 32,
        alu_per_iter: 4,
        alu_latency: 4,
        shared_per_iter: 0,
        shared_latency: 24,
        loads_per_iter: 2,
        stores_per_iter: 1,
        lines_per_load_min: 1,
        lines_per_load_max: 2,
        consume_distance: 1,
        pattern: AccessPattern::Strided { stride: 32 },
        working_set_lines: 24_000,
        l1_reuse_fraction: 0.40,
        reuse_fraction: 0.15,
        hot_lines: 1_024,
        barrier_every: Some(1),
        seed: 0x0123,
    }
}

/// Rodinia `sc` (streamcluster): distance computations over gathered
/// points with strong inter-warp reuse of the cluster centres (caught by
/// the L2).
fn sc() -> WorkloadParams {
    WorkloadParams {
        name: "sc".into(),
        ctas: 60,
        warps_per_cta: 8,
        max_ctas_per_core: 2,
        iters: 20,
        alu_per_iter: 11,
        alu_latency: 4,
        shared_per_iter: 0,
        shared_latency: 24,
        loads_per_iter: 3,
        stores_per_iter: 0,
        lines_per_load_min: 1,
        lines_per_load_max: 4,
        consume_distance: 1,
        pattern: AccessPattern::Gather,
        working_set_lines: 64_000,
        l1_reuse_fraction: 0.35,
        reuse_fraction: 0.50,
        hot_lines: 4_096,
        barrier_every: None,
        seed: 0x5C00,
    }
}

/// Parboil `lbm` (Lattice-Boltzmann): structured-grid stencil streaming
/// with a very high store ratio — the suite's DRAM-bandwidth stress case.
fn lbm() -> WorkloadParams {
    WorkloadParams {
        name: "lbm".into(),
        ctas: 60,
        warps_per_cta: 8,
        max_ctas_per_core: 2,
        iters: 16,
        alu_per_iter: 13,
        alu_latency: 4,
        shared_per_iter: 0,
        shared_latency: 24,
        loads_per_iter: 3,
        stores_per_iter: 4,
        lines_per_load_min: 1,
        lines_per_load_max: 1,
        consume_distance: 2,
        pattern: AccessPattern::Stencil { plane: 20_000 },
        working_set_lines: 160_000,
        l1_reuse_fraction: 0.15,
        reuse_fraction: 0.05,
        hot_lines: 2_048,
        barrier_every: None,
        seed: 0x1B30,
    }
}

/// `ss` (similarity score): mixed streaming/gather scoring kernel with
/// moderate reuse — memory-intensive but less divergent than cfd.
fn ss() -> WorkloadParams {
    WorkloadParams {
        name: "ss".into(),
        ctas: 60,
        warps_per_cta: 8,
        max_ctas_per_core: 2,
        iters: 20,
        alu_per_iter: 9,
        alu_latency: 4,
        shared_per_iter: 0,
        shared_latency: 24,
        loads_per_iter: 3,
        stores_per_iter: 2,
        lines_per_load_min: 1,
        lines_per_load_max: 3,
        consume_distance: 1,
        pattern: AccessPattern::Gather,
        working_set_lines: 120_000,
        l1_reuse_fraction: 0.30,
        reuse_fraction: 0.25,
        hot_lines: 3_000,
        barrier_every: None,
        seed: 0x5500,
    }
}

/// Parameters for one benchmark by name — the paper's eight plus the ML
/// kernel family ([`crate::ML_BENCHMARK_NAMES`]).
pub fn params_of(name: &str) -> Option<WorkloadParams> {
    match name {
        "cfd" => Some(cfd()),
        "dwt2d" => Some(dwt2d()),
        "leukocyte" => Some(leukocyte()),
        "nn" => Some(nn()),
        "nw" => Some(nw()),
        "sc" => Some(sc()),
        "lbm" => Some(lbm()),
        "ss" => Some(ss()),
        "gemm" => Some(crate::ml::gemm()),
        "conv" => Some(crate::ml::conv()),
        "attn" => Some(crate::ml::attn()),
        _ => None,
    }
}

/// The full suite, in [`BENCHMARK_NAMES`] order.
pub fn benchmarks() -> Vec<Arc<dyn KernelProgram>> {
    BENCHMARK_NAMES
        .iter()
        .map(|n| by_name(n).expect("name from the canonical list"))
        .collect()
}

/// Every benchmark name: the paper's eight followed by the ML family.
pub fn extended_names() -> Vec<&'static str> {
    BENCHMARK_NAMES
        .iter()
        .chain(crate::ML_BENCHMARK_NAMES.iter())
        .copied()
        .collect()
}

/// One benchmark by name, or `None` for unknown names.
pub fn by_name(name: &str) -> Option<Arc<dyn KernelProgram>> {
    params_of(name).map(|p| Arc::new(SyntheticKernel::new(p)) as Arc<dyn KernelProgram>)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumem_types::CtaId;

    #[test]
    fn all_eight_present_and_valid() {
        let all = benchmarks();
        assert_eq!(all.len(), 8);
        for (k, name) in all.iter().zip(BENCHMARK_NAMES) {
            assert_eq!(k.name(), name);
            assert!(k.grid_ctas() > 0);
            assert!(k.instr(CtaId::new(0), 0, 0).is_some());
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("nope").is_none());
        assert!(params_of("nope").is_none());
    }

    #[test]
    fn suite_sizes_are_tractable() {
        for name in BENCHMARK_NAMES {
            let p = params_of(name).unwrap();
            let total = p.approx_total_instructions();
            assert!(
                (10_000..2_000_000).contains(&total),
                "{name}: {total} instructions out of range"
            );
        }
    }

    #[test]
    fn profiles_are_differentiated() {
        let leuk = params_of("leukocyte").unwrap();
        let nn = params_of("nn").unwrap();
        // Arithmetic intensity (non-mem instrs per mem instr).
        let intensity = |p: &crate::WorkloadParams| {
            f64::from(p.alu_per_iter + p.shared_per_iter)
                / f64::from(p.loads_per_iter + p.stores_per_iter)
        };
        assert!(intensity(&leuk) > 5.0 * intensity(&nn));
        // lbm is store-heavy.
        let lbm = params_of("lbm").unwrap();
        assert!(lbm.stores_per_iter > lbm.loads_per_iter);
        // nw is barrier-synchronized with minimal occupancy.
        let nw = params_of("nw").unwrap();
        assert_eq!(nw.barrier_every, Some(1));
        assert_eq!(nw.max_ctas_per_core, 1);
        // cfd is the least coalesced.
        let cfd = params_of("cfd").unwrap();
        assert!(cfd.lines_per_load_min >= 2);
    }
}
