//! The ML kernel family: three synthetic generators modelling the memory
//! behaviour of the dense-linear-algebra kernels that dominate modern ML
//! inference and training.
//!
//! The paper's Rodinia/Parboil suite predates the deep-learning workload
//! shift; these generators extend the characterization to the shapes that
//! matter now, using the same [`WorkloadParams`] vocabulary so every
//! existing experiment (Fig. 1, Table I, the DSE) runs over them
//! unchanged:
//!
//! * [`gemm`] — a shared-memory-tiled dense GEMM (the double-buffered
//!   `k`-loop of a cuBLAS-style SGEMM).
//! * [`conv`] — an im2col convolution: overlapping sliding-window reads
//!   whose halo reuse is caught by the L1.
//! * [`attn`] — an attention-shaped streaming pass (QK^T then ·V): a hot
//!   query tile against a long streaming K/V sequence.

use crate::{AccessPattern, WorkloadParams};

/// Names of the ML kernel family, in presentation order. Disjoint from
/// [`BENCHMARK_NAMES`](crate::BENCHMARK_NAMES); [`params_of`](crate::params_of)
/// resolves both.
pub const ML_BENCHMARK_NAMES: [&str; 3] = ["gemm", "conv", "attn"];

/// Tiled dense GEMM, `C = A·B`. Each iteration is one `k`-tile of the
/// inner loop: two coalesced tile loads staged through shared memory, a
/// burst of MACs reading the tile, and the double-buffer barrier. High
/// arithmetic intensity, high reuse, barrier-synchronized — compute-bound
/// on paper, so the interesting question is how much of its time the
/// memory system still claims.
pub fn gemm() -> WorkloadParams {
    WorkloadParams {
        name: "gemm".into(),
        ctas: 64,
        warps_per_cta: 8,
        max_ctas_per_core: 2,
        iters: 24,
        alu_per_iter: 16,
        alu_latency: 4,
        shared_per_iter: 8,
        shared_latency: 24,
        loads_per_iter: 2,
        stores_per_iter: 0,
        lines_per_load_min: 1,
        lines_per_load_max: 2,
        consume_distance: 4,
        pattern: AccessPattern::Strided { stride: 128 },
        working_set_lines: 36_000,
        l1_reuse_fraction: 0.50,
        reuse_fraction: 0.45,
        hot_lines: 2_048,
        barrier_every: Some(1),
        seed: 0x6E44,
    }
}

/// im2col convolution: each iteration gathers an input patch whose rows
/// overlap the previous patch (halo reuse in the L1), multiplies against
/// a resident filter, and writes one output element. Sliding-window
/// strides, moderate intensity, store traffic present but light.
pub fn conv() -> WorkloadParams {
    WorkloadParams {
        name: "conv".into(),
        ctas: 72,
        warps_per_cta: 8,
        max_ctas_per_core: 2,
        iters: 20,
        alu_per_iter: 14,
        alu_latency: 4,
        shared_per_iter: 0,
        shared_latency: 24,
        loads_per_iter: 3,
        stores_per_iter: 1,
        lines_per_load_min: 1,
        lines_per_load_max: 2,
        consume_distance: 2,
        pattern: AccessPattern::Strided { stride: 56 },
        working_set_lines: 80_000,
        l1_reuse_fraction: 0.55,
        reuse_fraction: 0.35,
        hot_lines: 4_096,
        barrier_every: None,
        seed: 0xC04F,
    }
}

/// Attention-shaped streaming pass: scores a hot query tile (strong reuse
/// on a small set of lines) against a long streaming K/V sequence (large
/// working set, no reuse), with a shared-memory softmax reduction and a
/// periodic block barrier. Bandwidth-hungry like `nn`, but with a reuse
/// island the caches can exploit.
pub fn attn() -> WorkloadParams {
    WorkloadParams {
        name: "attn".into(),
        ctas: 48,
        warps_per_cta: 8,
        max_ctas_per_core: 2,
        iters: 28,
        alu_per_iter: 10,
        alu_latency: 4,
        shared_per_iter: 2,
        shared_latency: 24,
        loads_per_iter: 3,
        stores_per_iter: 1,
        lines_per_load_min: 1,
        lines_per_load_max: 2,
        consume_distance: 2,
        pattern: AccessPattern::Streaming,
        working_set_lines: 200_000,
        l1_reuse_fraction: 0.20,
        reuse_fraction: 0.40,
        hot_lines: 512,
        barrier_every: Some(4),
        seed: 0xA770,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params_of;

    #[test]
    fn ml_family_present_valid_and_tractable() {
        for name in ML_BENCHMARK_NAMES {
            let p = params_of(name).expect("ML name resolves");
            assert_eq!(p.name, name);
            p.validate();
            let total = p.approx_total_instructions();
            assert!(
                (10_000..2_000_000).contains(&total),
                "{name}: {total} instructions out of range"
            );
        }
    }

    #[test]
    fn ml_profiles_are_differentiated() {
        let (gemm, conv, attn) = (gemm(), conv(), attn());
        // GEMM is the compute- and reuse-heavy member: tiled through
        // shared memory, barrier per tile.
        assert!(gemm.shared_per_iter > 0);
        assert_eq!(gemm.barrier_every, Some(1));
        let intensity = |p: &WorkloadParams| {
            f64::from(p.alu_per_iter + p.shared_per_iter)
                / f64::from(p.loads_per_iter + p.stores_per_iter)
        };
        assert!(intensity(&gemm) > 2.0 * intensity(&attn));
        // Conv leans on L1 halo reuse more than either other member.
        assert!(conv.l1_reuse_fraction > gemm.l1_reuse_fraction);
        assert!(conv.l1_reuse_fraction > attn.l1_reuse_fraction);
        // Attention streams the largest working set with a small hot tile.
        assert!(attn.working_set_lines > conv.working_set_lines);
        assert!(attn.working_set_lines > gemm.working_set_lines);
        assert!(attn.hot_lines < gemm.hot_lines);
    }

    #[test]
    fn ml_names_do_not_collide_with_the_paper_suite() {
        for name in ML_BENCHMARK_NAMES {
            assert!(!crate::BENCHMARK_NAMES.contains(&name));
        }
    }
}
