//! The procedural kernel generator.

use gpumem_simt::{KernelProgram, WarpInstr};
use gpumem_types::{CtaId, LineAddr, SimRng};

use crate::{AccessPattern, WorkloadParams};

/// A kernel whose instruction stream is generated procedurally from
/// [`WorkloadParams`].
///
/// The stream is a pure function of `(cta, warp, pc)` — the simulator may
/// decode any instruction any number of times and always sees the same
/// result, which also makes every run exactly reproducible from the
/// parameter seed.
///
/// Iteration body layout (positions within one iteration):
///
/// ```text
/// [loads][ALU ops][shared ops][stores][barrier?]
/// ```
///
/// Loads consume `consume_distance` instructions later, so a larger
/// distance gives the warp more independent work to overlap with the miss —
/// the per-benchmark latency-tolerance knob behind the paper's Fig. 1
/// spread.
#[derive(Debug, Clone)]
pub struct SyntheticKernel {
    params: WorkloadParams,
}

impl SyntheticKernel {
    /// Builds a kernel from validated parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`WorkloadParams::validate`].
    pub fn new(params: WorkloadParams) -> Self {
        params.validate();
        SyntheticKernel { params }
    }

    /// The parameters in use.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    fn global_warp(&self, cta: CtaId, warp: u32) -> u64 {
        cta.index() as u64 * u64::from(self.params.warps_per_cta) + u64::from(warp)
    }

    /// Deterministic per-(warp, iteration, slot) RNG stream.
    fn rng_for(&self, g: u64, iter: u32, slot: u32, salt: u64) -> SimRng {
        let stream = g
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(iter) << 20)
            .wrapping_add(u64::from(slot) << 4)
            .wrapping_add(salt);
        SimRng::new(self.params.seed).fork(stream)
    }

    /// The coalesced line addresses of load `slot` in iteration `iter`.
    fn load_lines(&self, g: u64, iter: u32, slot: u32) -> Vec<LineAddr> {
        // Intra-warp temporal locality: re-read last iteration's lines
        // (usually still resident in the L1).
        let p = &self.params;
        let mut reuse_rng = self.rng_for(g, iter, slot, 2);
        if iter > 0 && reuse_rng.gen_bool(p.l1_reuse_fraction) {
            return self.pattern_lines(g, iter - 1, slot);
        }
        self.pattern_lines(g, iter, slot)
    }

    /// Pattern-generated lines (no intra-warp reuse applied).
    fn pattern_lines(&self, g: u64, iter: u32, slot: u32) -> Vec<LineAddr> {
        let p = &self.params;
        let mut rng = self.rng_for(g, iter, slot, 1);
        let span = u64::from(p.lines_per_load_max - p.lines_per_load_min + 1);
        let k = u64::from(p.lines_per_load_min) + rng.gen_range(span);

        let mut lines = Vec::with_capacity(k as usize);
        for j in 0..k {
            let line = if rng.gen_bool(p.reuse_fraction) {
                // Hot-region reuse (caught by the L2 across warps).
                rng.gen_range(p.hot_lines)
            } else {
                match p.pattern {
                    AccessPattern::Streaming => {
                        let base = (g * u64::from(p.iters) + u64::from(iter))
                            * u64::from(p.loads_per_iter)
                            + u64::from(slot);
                        (base * k + j) % p.working_set_lines
                    }
                    AccessPattern::Strided { stride } => {
                        let base = (g + u64::from(iter) * 131) * stride + u64::from(slot) * 17;
                        (base + j * stride) % p.working_set_lines
                    }
                    AccessPattern::Gather => rng.gen_range(p.working_set_lines),
                    AccessPattern::Stencil { plane } => {
                        let base = g * u64::from(p.iters) + u64::from(iter);
                        (base + u64::from(slot) * plane + j) % p.working_set_lines
                    }
                }
            };
            if !lines.contains(&LineAddr::new(line)) {
                lines.push(LineAddr::new(line));
            }
        }
        if lines.is_empty() {
            lines.push(LineAddr::new(0));
        }
        lines
    }

    /// The line addresses of store `slot` in iteration `iter` (stores
    /// write a disjoint result region in the upper half of the address
    /// space).
    fn store_lines(&self, g: u64, iter: u32, slot: u32) -> Vec<LineAddr> {
        let p = &self.params;
        let base = (g * u64::from(p.iters) + u64::from(iter)) * u64::from(p.stores_per_iter.max(1))
            + u64::from(slot);
        vec![LineAddr::new(
            p.working_set_lines + base % p.working_set_lines,
        )]
    }
}

impl KernelProgram for SyntheticKernel {
    fn name(&self) -> &str {
        &self.params.name
    }

    fn grid_ctas(&self) -> u32 {
        self.params.ctas
    }

    fn warps_per_cta(&self) -> u32 {
        self.params.warps_per_cta
    }

    fn max_ctas_per_core(&self) -> usize {
        self.params.max_ctas_per_core
    }

    fn warp_instr_count(&self, _cta: CtaId, _warp: u32) -> Option<u32> {
        // Every warp runs the same loop: `instr` returns `Some` exactly
        // for pc < iters * instrs_per_iter, so the count is exact — the
        // soundness requirement the epoch engine's retirement bound
        // places on this hint.
        Some(
            self.params
                .iters
                .saturating_mul(self.params.instrs_per_iter()),
        )
    }

    fn instr(&self, cta: CtaId, warp: u32, pc: u32) -> Option<WarpInstr> {
        let p = &self.params;
        let body = p.instrs_per_iter();
        let iter = pc / body;
        if iter >= p.iters {
            return None;
        }
        let pos = pc % body;
        let g = self.global_warp(cta, warp);

        let loads_end = p.loads_per_iter;
        let alu_end = loads_end + p.alu_per_iter;
        let shared_end = alu_end + p.shared_per_iter;
        let stores_end = shared_end + p.stores_per_iter;

        if pos < loads_end {
            Some(WarpInstr::Load {
                lines: self.load_lines(g, iter, pos),
                consume_after: p.consume_distance.max(1),
            })
        } else if pos < alu_end {
            Some(WarpInstr::Alu {
                latency: p.alu_latency.max(1),
            })
        } else if pos < shared_end {
            Some(WarpInstr::Shared {
                latency: p.shared_latency.max(1),
            })
        } else if pos < stores_end {
            Some(WarpInstr::Store {
                lines: self.store_lines(g, iter, pos - shared_end),
            })
        } else {
            // Barrier slot: present when barrier_every == Some(1); for
            // larger periods the barrier replaces the slot only on matching
            // iterations and is otherwise a filler ALU op.
            match p.barrier_every {
                Some(n) if (iter + 1).is_multiple_of(n) => Some(WarpInstr::Barrier),
                Some(_) => Some(WarpInstr::Alu { latency: 1 }),
                None => unreachable!("body length excludes barrier slot"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> SyntheticKernel {
        let mut p = WorkloadParams::template("t");
        p.loads_per_iter = 2;
        p.stores_per_iter = 1;
        p.lines_per_load_min = 2;
        p.lines_per_load_max = 4;
        p.pattern = AccessPattern::Gather;
        p.reuse_fraction = 0.3;
        SyntheticKernel::new(p)
    }

    #[test]
    fn warp_instr_count_is_exact() {
        let k = kernel();
        let cta = CtaId::new(1);
        let total = k.warp_instr_count(cta, 1).unwrap();
        assert!(total > 0);
        for pc in 0..total {
            assert!(k.instr(cta, 1, pc).is_some(), "pc {pc} under-counted");
        }
        assert!(k.instr(cta, 1, total).is_none(), "count overstated");
    }

    #[test]
    fn stream_is_deterministic() {
        let k = kernel();
        for pc in 0..40 {
            let a = k.instr(CtaId::new(3), 1, pc);
            let b = k.instr(CtaId::new(3), 1, pc);
            assert_eq!(a, b, "pc {pc}");
        }
    }

    #[test]
    fn stream_terminates_exactly_after_iters() {
        let k = kernel();
        let total = k.params().iters * k.params().instrs_per_iter();
        assert!(k.instr(CtaId::new(0), 0, total - 1).is_some());
        assert!(k.instr(CtaId::new(0), 0, total).is_none());
        assert!(k.instr(CtaId::new(0), 0, total + 100).is_none());
    }

    #[test]
    fn layout_matches_parameters() {
        let k = kernel();
        let p = k.params();
        // First loads, then ALU, then stores (no shared configured).
        for pc in 0..p.loads_per_iter {
            assert!(matches!(
                k.instr(CtaId::new(0), 0, pc),
                Some(WarpInstr::Load { .. })
            ));
        }
        for pc in p.loads_per_iter..p.loads_per_iter + p.alu_per_iter {
            assert!(matches!(
                k.instr(CtaId::new(0), 0, pc),
                Some(WarpInstr::Alu { .. })
            ));
        }
        let store_pc = p.loads_per_iter + p.alu_per_iter;
        assert!(matches!(
            k.instr(CtaId::new(0), 0, store_pc),
            Some(WarpInstr::Store { .. })
        ));
    }

    #[test]
    fn addresses_stay_in_bounds() {
        let k = kernel();
        let p = k.params();
        let bound = p.working_set_lines * 2; // loads + disjoint store region
        for cta in 0..4 {
            for warp in 0..2 {
                let mut pc = 0;
                while let Some(instr) = k.instr(CtaId::new(cta), warp, pc) {
                    match instr {
                        WarpInstr::Load { lines, .. } | WarpInstr::Store { lines } => {
                            for l in lines {
                                assert!(l.index() < bound, "line {l} out of bounds");
                            }
                        }
                        _ => {}
                    }
                    pc += 1;
                }
            }
        }
    }

    #[test]
    fn coalescing_bounds_respected_and_lines_distinct() {
        let k = kernel();
        let p = k.params();
        for iter in 0..p.iters {
            for slot in 0..p.loads_per_iter {
                if let Some(WarpInstr::Load { lines, .. }) =
                    k.instr(CtaId::new(1), 0, iter * p.instrs_per_iter() + slot)
                {
                    assert!(!lines.is_empty());
                    assert!(lines.len() <= p.lines_per_load_max as usize);
                    let mut sorted = lines.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    assert_eq!(
                        sorted.len(),
                        lines.len(),
                        "duplicate lines in coalesced load"
                    );
                }
            }
        }
    }

    #[test]
    fn different_warps_differ() {
        let k = kernel();
        let a = k.instr(CtaId::new(0), 0, 0);
        let b = k.instr(CtaId::new(5), 3, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn barrier_appears_on_schedule() {
        let mut p = WorkloadParams::template("b");
        p.barrier_every = Some(1);
        p.loads_per_iter = 1;
        p.alu_per_iter = 1;
        let k = SyntheticKernel::new(p);
        let body = k.params().instrs_per_iter();
        assert_eq!(body, 3);
        assert!(matches!(
            k.instr(CtaId::new(0), 0, 2),
            Some(WarpInstr::Barrier)
        ));
        assert!(matches!(
            k.instr(CtaId::new(0), 0, 5),
            Some(WarpInstr::Barrier)
        ));
    }

    #[test]
    fn periodic_barrier_fills_with_alu() {
        let mut p = WorkloadParams::template("b2");
        p.barrier_every = Some(2);
        p.loads_per_iter = 1;
        p.alu_per_iter = 1;
        p.iters = 4;
        let k = SyntheticKernel::new(p);
        assert_eq!(k.params().instrs_per_iter(), 3);
        // Iterations 0, 2 (1-indexed: 1, 3) carry the filler; 1, 3 carry
        // the barrier.
        assert!(matches!(
            k.instr(CtaId::new(0), 0, 2),
            Some(WarpInstr::Alu { .. })
        ));
        assert!(matches!(
            k.instr(CtaId::new(0), 0, 5),
            Some(WarpInstr::Barrier)
        ));
        assert!(matches!(
            k.instr(CtaId::new(0), 0, 8),
            Some(WarpInstr::Alu { .. })
        ));
        assert!(matches!(
            k.instr(CtaId::new(0), 0, 11),
            Some(WarpInstr::Barrier)
        ));
    }
}
