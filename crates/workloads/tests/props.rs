//! Property tests for the workload generator.

use gpumem_simt::{KernelProgram, WarpInstr};
use gpumem_types::CtaId;
use gpumem_workloads::{AccessPattern, SyntheticKernel, WorkloadParams};
use proptest::prelude::*;

fn arbitrary_params() -> impl Strategy<Value = WorkloadParams> {
    let shape = (
        1u32..20, // ctas
        1u32..8,  // warps_per_cta
        1u32..12, // iters
        0u32..10, // alu
        0u32..4,  // shared
        0u32..4,  // loads
        0u32..3,  // stores
        1u32..6,  // k_min
        0u32..8,  // k_extra
        1u32..8,  // consume
    );
    let flavour = (
        0u64..4,                   // pattern selector
        0.0f64..1.0,               // reuse
        0.0f64..1.0,               // l1 reuse
        1u64..100_000,             // working set
        prop::option::of(1u32..5), // barrier
        any::<u64>(),              // seed
    );
    (shape, flavour).prop_map(
        |(
            (ctas, wpc, iters, alu, shared, loads, stores, kmin, kextra, consume),
            (pat, reuse, l1r, ws, barrier, seed),
        )| {
            let mut p = WorkloadParams::template("prop");
            p.ctas = ctas;
            p.warps_per_cta = wpc;
            p.iters = iters;
            p.alu_per_iter = alu;
            p.shared_per_iter = shared;
            // Keep at least one instruction in the body.
            p.loads_per_iter = loads.max(u32::from(alu + shared + stores == 0));
            p.stores_per_iter = stores;
            p.lines_per_load_min = kmin;
            p.lines_per_load_max = (kmin + kextra).min(32);
            p.consume_distance = consume;
            p.pattern = match pat {
                0 => AccessPattern::Streaming,
                1 => AccessPattern::Strided {
                    stride: 1 + seed % 100,
                },
                2 => AccessPattern::Gather,
                _ => AccessPattern::Stencil {
                    plane: 1 + seed % 10_000,
                },
            };
            p.reuse_fraction = reuse;
            p.l1_reuse_fraction = l1r;
            p.working_set_lines = ws;
            p.hot_lines = (ws / 8).max(1);
            p.barrier_every = barrier;
            p.seed = seed;
            p
        },
    )
}

proptest! {
    /// The instruction stream is a pure function: the same (cta, warp, pc)
    /// decodes identically on repeated and out-of-order queries.
    #[test]
    fn stream_is_pure(params in arbitrary_params(), cta in 0u32..20, warp in 0u32..8) {
        let k = SyntheticKernel::new(params.clone());
        let cta = CtaId::new(cta % params.ctas);
        let warp = warp % params.warps_per_cta;
        let body = params.instrs_per_iter() * params.iters;
        // Query backwards first, then forwards — must agree.
        let backwards: Vec<_> = (0..body.min(60)).rev().map(|pc| k.instr(cta, warp, pc)).collect();
        let forwards: Vec<_> = (0..body.min(60)).map(|pc| k.instr(cta, warp, pc)).collect();
        let reversed: Vec<_> = backwards.into_iter().rev().collect();
        prop_assert_eq!(forwards, reversed);
    }

    /// Streams terminate exactly at iters × body and never resume.
    #[test]
    fn stream_terminates(params in arbitrary_params()) {
        let k = SyntheticKernel::new(params.clone());
        let end = params.instrs_per_iter() * params.iters;
        prop_assert!(k.instr(CtaId::new(0), 0, end - 1).is_some());
        for pc in end..end + 5 {
            prop_assert!(k.instr(CtaId::new(0), 0, pc).is_none());
        }
    }

    /// Generated addresses stay within the declared footprint and loads
    /// respect the coalescing bounds with distinct lines.
    #[test]
    fn addresses_and_coalescing_in_bounds(params in arbitrary_params()) {
        let k = SyntheticKernel::new(params.clone());
        let body = params.instrs_per_iter() * params.iters;
        let bound = params.working_set_lines * 2;
        for pc in 0..body.min(80) {
            match k.instr(CtaId::new(0), 0, pc) {
                Some(WarpInstr::Load { lines, consume_after }) => {
                    prop_assert!(!lines.is_empty());
                    prop_assert!(lines.len() <= params.lines_per_load_max as usize);
                    prop_assert!(consume_after >= 1);
                    let mut sorted = lines.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    prop_assert_eq!(sorted.len(), lines.len());
                    for l in &lines {
                        prop_assert!(l.index() < bound);
                    }
                }
                Some(WarpInstr::Store { lines }) => {
                    prop_assert!(!lines.is_empty());
                    for l in &lines {
                        prop_assert!(l.index() < bound);
                    }
                }
                _ => {}
            }
        }
    }

    /// Scaling preserves validity and shrinks (or keeps) total work.
    #[test]
    fn scaling_is_sound(params in arbitrary_params(), factor in 0.05f64..1.0) {
        let scaled = params.scaled(factor);
        scaled.validate();
        prop_assert!(scaled.approx_total_instructions() <= params.approx_total_instructions().max(
            u64::from(scaled.warps_per_cta) * u64::from(scaled.instrs_per_iter()) * u64::from(scaled.iters)));
        prop_assert!(scaled.ctas >= 1);
        prop_assert!(scaled.iters >= 1);
    }
}
