//! Reproduction of *Characterizing Memory Bottlenecks in GPGPU Workloads*
//! (S. Dublish, V. Nagarajan, N. Topham — IISWC 2016) in Rust.
//!
//! The paper characterizes the bandwidth bottlenecks of a Fermi-class GPU's
//! memory hierarchy with three experiments, each reproduced here on the
//! `gpumem-sim` substrate (a from-scratch cycle-level simulator of the
//! GTX480 memory system):
//!
//! 1. **Latency-tolerance profile** (Fig. 1) —
//!    [`experiments::latency_tolerance`]: IPC versus a fixed, synthetic L1
//!    miss latency, normalized to the baseline architecture.
//! 2. **Congestion measurement** (Section III) —
//!    [`experiments::congestion`]: how often the L2 access queues and DRAM
//!    scheduler queues are full during their usage lifetime (the paper
//!    reports 46% and 39% on average).
//! 3. **Design-space exploration** (Table I / Section IV) —
//!    [`experiments::design_space`]: speedups from scaling the L1, L2 and
//!    DRAM bandwidth parameters to ~4×, in isolation and synergistically
//!    (the paper reports +4%, +59%, +11%, and +69%/+76% combined).
//!
//! # Quickstart
//!
//! ```
//! use gpumem::prelude::*;
//!
//! // Run one benchmark on the baseline GTX480 and inspect congestion.
//! let program = gpumem::workloads::by_name("nn").expect("known benchmark");
//! let mut cfg = GpuConfig::gtx480();
//! cfg.num_cores = 2; // shrink for a doc test
//! let report = run_benchmark(&cfg, &program, MemoryMode::Hierarchy).expect("completes");
//! assert!(report.ipc > 0.0);
//! assert!(report.l2_access_queue_full_fraction().is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod run;
pub mod text;

pub use run::{
    retry_with_policy, run_benchmark, run_benchmarks_parallel, run_benchmarks_resilient,
    run_benchmarks_resilient_with, Backoff, BatchOutcome, BenchmarkFailure, RetryPolicy, RunSpec,
    DEFAULT_MAX_CYCLES,
};

/// Re-export of the configuration crate (baseline + Table I design space).
pub use gpumem_config as config;
/// Re-export of the full-system simulator.
pub use gpumem_sim as sim;
/// Re-export of the benchmark suite.
pub use gpumem_workloads as workloads;

/// One-line imports for the common API surface.
pub mod prelude {
    pub use crate::experiments::congestion::{congestion_study, CongestionStudy};
    pub use crate::experiments::design_space::{design_space_exploration, DseStudy};
    pub use crate::experiments::latency_tolerance::{
        latency_tolerance_profile, LatencyProfile, FIG1_LATENCIES,
    };
    pub use crate::run::{run_benchmark, run_benchmarks_parallel, run_benchmarks_resilient};
    pub use gpumem_config::{DesignPoint, GpuConfig};
    pub use gpumem_sim::{EpochPolicy, GpuSimulator, MemoryMode, SimReport};
    pub use gpumem_workloads::{benchmarks, by_name, BENCHMARK_NAMES};
}
