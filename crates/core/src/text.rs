//! Plain-text rendering of experiment results in the paper's shape, used
//! by the `repro` harness and the examples.

use std::fmt::Write as _;

use gpumem_config::TABLE_I;

use crate::experiments::congestion::CongestionStudy;
use crate::experiments::design_space::DseStudy;
use crate::experiments::latency_tolerance::LatencyProfile;

/// Renders the paper's Table I verbatim.
pub fn table_i() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE I — CONSOLIDATED DESIGN SPACE TO MITIGATE CONGESTION"
    );
    let mut section = "";
    for row in TABLE_I {
        if row.section != section {
            section = row.section;
            let _ = writeln!(out, "  ({})", section);
        }
        let _ = writeln!(
            out,
            "    {:<24} {}  {:<18} -> {}",
            row.name, row.param_type, row.baseline, row.scaled
        );
    }
    out
}

/// Renders Fig. 1 as a latency × benchmark matrix of normalized IPC,
/// followed by the per-benchmark observations (intercept, plateau, peak).
pub fn fig1_table(profiles: &[LatencyProfile]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIG. 1 — PERFORMANCE VARIATION WITH INCREASING L1 MISS LATENCY"
    );
    let _ = writeln!(out, "(normalized IPC; baseline architecture = 1.0)");
    let _ = write!(out, "{:>8}", "latency");
    for p in profiles {
        let _ = write!(out, " {:>9}", p.benchmark);
    }
    let _ = writeln!(out);

    if let Some(first) = profiles.first() {
        for (i, pt) in first.points.iter().enumerate() {
            let _ = write!(out, "{:>8}", pt.latency);
            for p in profiles {
                let v = p.points.get(i).map_or(f64::NAN, |x| x.normalized_ipc);
                let _ = write!(out, " {v:>9.3}");
            }
            let _ = writeln!(out);
        }
    }

    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>14} {:>12} {:>22}",
        "benchmark", "peak(norm)", "plateau_end", "intercept", "baseline_miss_latency"
    );
    for p in profiles {
        let _ = writeln!(
            out,
            "{:>10} {:>12.2} {:>14} {:>12} {:>22.0}",
            p.benchmark,
            p.peak_normalized_ipc(),
            p.plateau_end,
            p.baseline_intercept
                .map_or("beyond".to_owned(), |x| format!("{x:.0}")),
            p.baseline_avg_miss_latency,
        );
    }
    out
}

/// Renders the Section III congestion study.
pub fn congestion_table(study: &CongestionStudy) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "SECTION III — MEASURING THE BANDWIDTH BOTTLENECK");
    let _ = writeln!(
        out,
        "{:>10} {:>8} {:>14} {:>15} {:>16} {:>12}",
        "benchmark", "ipc", "L2accq_full%", "DRAMschq_full%", "avg_missLat(cyc)", "memStall%"
    );
    for r in &study.rows {
        let _ = writeln!(
            out,
            "{:>10} {:>8.2} {:>14.1} {:>15.1} {:>16.0} {:>12.1}",
            r.benchmark,
            r.ipc,
            r.l2_access_full * 100.0,
            r.dram_sched_full * 100.0,
            r.avg_l1_miss_latency,
            r.memory_stall_fraction * 100.0,
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "AVERAGE: L2 access queues full {:.0}% of usage lifetime (paper: 46%)",
        study.avg_l2_access_full * 100.0
    );
    let _ = writeln!(
        out,
        "AVERAGE: DRAM scheduler queues full {:.0}% of usage lifetime (paper: 39%)",
        study.avg_dram_sched_full * 100.0
    );
    out
}

/// Renders the Section IV design-space exploration.
pub fn dse_table(study: &DseStudy) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "SECTION IV — DESIGN-SPACE EXPLORATION (speedup vs baseline)"
    );
    let _ = write!(out, "{:>10}", "benchmark");
    for p in &study.points {
        let _ = write!(out, " {:>9}", p.design.label());
    }
    let _ = writeln!(out);

    for (i, (name, _)) in study.baseline_ipc.iter().enumerate() {
        let _ = write!(out, "{name:>10}");
        for p in &study.points {
            let v = p.speedups.get(i).map_or(f64::NAN, |(_, s)| *s);
            let _ = write!(out, " {v:>9.3}");
        }
        let _ = writeln!(out);
    }

    let _ = write!(out, "{:>10}", "AVERAGE");
    for p in &study.points {
        let _ = write!(out, " {:>9.3}", p.average_speedup());
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:>10}", "GEOMEAN");
    for p in &study.points {
        let _ = write!(out, " {:>9.3}", p.geomean_speedup());
    }
    let _ = writeln!(out);

    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Paper averages: L1 +4%, L2 +59%, DRAM +11%, L1+L2 +69%, L2+DRAM +76%"
    );
    for p in &study.points {
        let degraded = p.degraded();
        if !degraded.is_empty() {
            let _ = writeln!(
                out,
                "NOTE: {} scaling degrades: {}",
                p.design.label(),
                degraded.join(", ")
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::congestion::CongestionRow;
    use crate::experiments::design_space::DsePointResult;
    use crate::experiments::latency_tolerance::LatencyPoint;
    use gpumem_config::DesignPoint;

    #[test]
    fn table_i_mentions_every_row() {
        let t = table_i();
        for row in TABLE_I {
            assert!(t.contains(row.name), "missing {}", row.name);
        }
    }

    #[test]
    fn fig1_table_renders_matrix() {
        let profile = LatencyProfile {
            benchmark: "nn".into(),
            baseline_ipc: 2.0,
            baseline_avg_miss_latency: 350.0,
            points: vec![
                LatencyPoint {
                    latency: 0,
                    ipc: 8.0,
                    normalized_ipc: 4.0,
                },
                LatencyPoint {
                    latency: 400,
                    ipc: 2.0,
                    normalized_ipc: 1.0,
                },
            ],
            plateau_end: 0,
            baseline_intercept: Some(400.0),
        };
        let t = fig1_table(&[profile]);
        assert!(t.contains("nn"));
        assert!(t.contains("4.000"));
        assert!(t.contains("400"));
    }

    #[test]
    fn congestion_table_includes_averages() {
        let study = CongestionStudy {
            rows: vec![CongestionRow {
                benchmark: "sc".into(),
                ipc: 3.0,
                l2_access_full: 0.46,
                dram_sched_full: 0.39,
                l2_access_mean_occupancy: 4.0,
                dram_sched_mean_occupancy: 8.0,
                avg_l1_miss_latency: 420.0,
                memory_stall_fraction: 0.6,
            }],
            avg_l2_access_full: 0.46,
            avg_dram_sched_full: 0.39,
        };
        let t = congestion_table(&study);
        assert!(t.contains("46%"));
        assert!(t.contains("39%"));
        assert!(t.contains("sc"));
    }

    #[test]
    fn dse_table_flags_degradation() {
        let study = DseStudy {
            baseline_ipc: vec![("nw".into(), 1.0)],
            points: vec![DsePointResult {
                design: DesignPoint::L1_ONLY,
                speedups: vec![("nw".into(), 0.93)],
            }],
        };
        let t = dse_table(&study);
        assert!(t.contains("degrades: nw"));
        assert!(t.contains("0.930"));
    }
}
