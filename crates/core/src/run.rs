//! Helpers for running benchmarks, serially or across threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use gpumem_config::GpuConfig;
use gpumem_sim::{GpuSimulator, MemoryMode, SimError, SimReport};
use gpumem_simt::KernelProgram;
use gpumem_types::SimRng;

/// Default watchdog budget: generous enough for every suite benchmark at
/// every design point, small enough to catch deadlocks quickly.
pub const DEFAULT_MAX_CYCLES: u64 = 50_000_000;

/// One simulation to run: a configuration, a kernel and a memory mode.
#[derive(Clone)]
pub struct RunSpec {
    /// GPU configuration (baseline or a Table I design point).
    pub cfg: GpuConfig,
    /// The kernel to execute.
    pub program: Arc<dyn KernelProgram>,
    /// Memory backend.
    pub mode: MemoryMode,
}

impl std::fmt::Debug for RunSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunSpec")
            .field("program", &self.program.name())
            .field("mode", &self.mode)
            .finish_non_exhaustive()
    }
}

/// Runs one benchmark to completion.
///
/// # Errors
///
/// Propagates [`SimError::Watchdog`] if the run does not complete within
/// [`DEFAULT_MAX_CYCLES`].
pub fn run_benchmark(
    cfg: &GpuConfig,
    program: &Arc<dyn KernelProgram>,
    mode: MemoryMode,
) -> Result<SimReport, SimError> {
    GpuSimulator::new(cfg.clone(), Arc::clone(program), mode).run(DEFAULT_MAX_CYCLES)
}

/// Runs a batch of independent simulations across all available cores,
/// preserving input order in the output.
///
/// # Errors
///
/// Returns the first [`SimError`] encountered (remaining runs still
/// execute; their results are discarded).
pub fn run_benchmarks_parallel(specs: &[RunSpec]) -> Result<Vec<SimReport>, SimError> {
    let n = specs.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<SimReport, SimError>)>();

    thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let spec = &specs[i];
                let out = GpuSimulator::new(spec.cfg.clone(), Arc::clone(&spec.program), spec.mode)
                    .run(DEFAULT_MAX_CYCLES);
                tx.send((i, out)).expect("receiver outlives the scope");
            });
        }
    });
    drop(tx);

    // Workers finish in arbitrary order; reassemble by index so the output
    // order (and the index of the error returned, if any) depends only on
    // the input.
    let mut results: Vec<Option<Result<SimReport, SimError>>> = (0..n).map(|_| None).collect();
    for (i, out) in rx {
        results[i] = Some(out);
    }
    results
        .into_iter()
        .map(|slot| slot.expect("every index was sent by a worker"))
        .collect()
}

/// Deterministic seeded exponential backoff between retry attempts.
///
/// The delay before retry `n` (the first retry is `n = 1`) is
/// `base_ms << (n - 1)`, capped at `max_ms`, plus a jitter of up to half
/// the delay drawn from a [`SimRng`] stream forked from `(seed, salt, n)`
/// — so two cells retrying at once do not hammer the host in lockstep,
/// yet the whole schedule is reproducible from the policy and the cell's
/// salt alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the first retry, in milliseconds (0 disables waiting).
    pub base_ms: u64,
    /// Ceiling on the exponential growth, in milliseconds.
    pub max_ms: u64,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl Backoff {
    /// A backoff that never waits (retry immediately).
    pub const NONE: Backoff = Backoff {
        base_ms: 0,
        max_ms: 0,
        seed: 0,
    };

    /// The delay in milliseconds before retry `attempt` (1-based) of the
    /// work item identified by `salt`. Deterministic in
    /// `(self, salt, attempt)`.
    pub fn delay_ms(&self, salt: u64, attempt: u32) -> u64 {
        if self.base_ms == 0 {
            return 0;
        }
        let exp = self
            .base_ms
            .checked_shl(attempt.saturating_sub(1).min(32))
            .unwrap_or(u64::MAX)
            .min(self.max_ms.max(self.base_ms));
        let jitter = SimRng::new(self.seed)
            .fork(salt)
            .fork(attempt as u64)
            .gen_range(exp / 2 + 1);
        exp + jitter
    }
}

/// How [`run_benchmarks_resilient_with`] (and the sweep orchestrator)
/// respond to a failed attempt: up to `max_attempts` tries, separated by
/// deterministic seeded exponential [`Backoff`].
///
/// Only *host-dependent* errors ([`SimError::is_host_dependent`]:
/// a missed wall-clock deadline, a panicked worker) are retried — a
/// deterministic error (wedge, queue overflow, expired cycle budget) would
/// fail every retry identically, so it fails fast after one attempt
/// regardless of the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts allowed (≥ 1; the first run counts as one).
    pub max_attempts: u32,
    /// Wait schedule between attempts.
    pub backoff: Backoff,
}

impl RetryPolicy {
    /// `max_attempts` tries with no waiting between them.
    pub fn immediate(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            backoff: Backoff::NONE,
        }
    }
}

impl Default for RetryPolicy {
    /// The historical [`run_benchmarks_resilient`] behaviour: one retry,
    /// immediately.
    fn default() -> Self {
        RetryPolicy::immediate(2)
    }
}

/// Runs `attempt` under `policy`, retrying host-dependent failures with
/// the policy's backoff. Returns how many attempts were made alongside the
/// final outcome. `salt` keys the jitter stream (callers pass a stable
/// per-work-item value, e.g. the batch index or a cell digest).
pub fn retry_with_policy<F>(
    policy: &RetryPolicy,
    salt: u64,
    mut attempt: F,
) -> (u32, Result<SimReport, SimError>)
where
    F: FnMut() -> Result<SimReport, SimError>,
{
    let max = policy.max_attempts.max(1);
    let mut tries = 0u32;
    loop {
        tries += 1;
        match attempt() {
            Ok(report) => return (tries, Ok(report)),
            Err(error) => {
                if !error.is_host_dependent() || tries >= max {
                    return (tries, Err(error));
                }
                let ms = policy.backoff.delay_ms(salt, tries);
                if ms > 0 {
                    thread::sleep(Duration::from_millis(ms));
                }
            }
        }
    }
}

/// One benchmark that could not be completed by [`run_benchmarks_resilient`],
/// after exhausting its retry budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkFailure {
    /// Index into the input `specs` slice.
    pub index: usize,
    /// The benchmark's name.
    pub benchmark: String,
    /// How many attempts were actually made: 1 for a deterministic error
    /// (which fails fast — a retry would reproduce it bit-identically),
    /// up to the policy's `max_attempts` for host-dependent errors.
    pub attempts: u32,
    /// The typed error from the last attempt.
    pub error: SimError,
}

/// Outcome of a resilient batch: reports in input order, with `None` at
/// every index that failed, plus a structured record of each failure.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One slot per input spec, in input order.
    pub reports: Vec<Option<SimReport>>,
    /// Benchmarks that failed both attempts, in input order.
    pub failures: Vec<BenchmarkFailure>,
}

impl BatchOutcome {
    /// True when every benchmark in the batch completed.
    pub fn all_ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// [`run_benchmarks_resilient_with`] under the historical default policy
/// (one immediate retry for host-dependent failures).
pub fn run_benchmarks_resilient(
    specs: &[RunSpec],
    max_cycles: u64,
    deadline_seconds: Option<f64>,
) -> BatchOutcome {
    run_benchmarks_resilient_with(specs, max_cycles, deadline_seconds, &RetryPolicy::default())
}

/// Runs a batch of independent simulations across all available cores,
/// degrading gracefully instead of failing the whole batch: each benchmark
/// gets an optional per-run wall-clock budget (`deadline_seconds`), a
/// host-dependent failure is retried under `policy` (deterministic errors
/// fail fast — see [`RetryPolicy`]), and a benchmark that exhausts its
/// budget is reported in [`BatchOutcome::failures`] while every other
/// benchmark's report is still returned.
pub fn run_benchmarks_resilient_with(
    specs: &[RunSpec],
    max_cycles: u64,
    deadline_seconds: Option<f64>,
    policy: &RetryPolicy,
) -> BatchOutcome {
    let n = specs.len();
    if n == 0 {
        return BatchOutcome {
            reports: Vec::new(),
            failures: Vec::new(),
        };
    }
    let workers = thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, u32, Result<SimReport, SimError>)>();

    thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let spec = &specs[i];
                let (attempts, out) = retry_with_policy(policy, i as u64, || {
                    let mut sim =
                        GpuSimulator::new(spec.cfg.clone(), Arc::clone(&spec.program), spec.mode);
                    sim.set_deadline_seconds(deadline_seconds);
                    sim.run(max_cycles)
                });
                tx.send((i, attempts, out))
                    .expect("receiver outlives the scope");
            });
        }
    });
    drop(tx);

    let mut reports: Vec<Option<SimReport>> = (0..n).map(|_| None).collect();
    let mut failures = Vec::new();
    for (i, attempts, out) in rx {
        match out {
            Ok(report) => reports[i] = Some(report),
            Err(error) => failures.push(BenchmarkFailure {
                index: i,
                benchmark: specs[i].program.name().to_owned(),
                attempts,
                error,
            }),
        }
    }
    failures.sort_by_key(|f| f.index);
    BatchOutcome { reports, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumem_workloads::{SyntheticKernel, WorkloadParams};

    fn tiny_spec(mode: MemoryMode) -> RunSpec {
        let mut cfg = GpuConfig::tiny();
        cfg.num_cores = 2;
        let mut p = WorkloadParams::template("t");
        p.ctas = 4;
        p.warps_per_cta = 2;
        p.iters = 4;
        p.working_set_lines = 2_000;
        RunSpec {
            cfg,
            program: Arc::new(SyntheticKernel::new(p)),
            mode,
        }
    }

    #[test]
    fn serial_run_completes() {
        let spec = tiny_spec(MemoryMode::Hierarchy);
        let report = run_benchmark(&spec.cfg, &spec.program, spec.mode).unwrap();
        assert!(report.instructions > 0);
        assert_eq!(report.benchmark, "t");
    }

    #[test]
    fn parallel_matches_serial_and_preserves_order() {
        let specs = vec![
            tiny_spec(MemoryMode::Hierarchy),
            tiny_spec(MemoryMode::FixedLatency(100)),
            tiny_spec(MemoryMode::FixedLatency(0)),
        ];
        let par = run_benchmarks_parallel(&specs).unwrap();
        assert_eq!(par.len(), 3);
        for (spec, report) in specs.iter().zip(&par) {
            let serial = run_benchmark(&spec.cfg, &spec.program, spec.mode).unwrap();
            assert_eq!(serial.cycles, report.cycles, "determinism across threads");
            assert_eq!(serial.instructions, report.instructions);
        }
        assert_eq!(par[1].mode, "fixed-latency(100)");
        assert_eq!(par[2].mode, "fixed-latency(0)");
    }

    #[test]
    fn empty_batch_is_ok() {
        assert!(run_benchmarks_parallel(&[]).unwrap().is_empty());
    }

    /// A spec too big to finish inside a small cycle budget.
    fn oversized_spec() -> RunSpec {
        let mut spec = tiny_spec(MemoryMode::FixedLatency(400));
        let mut p = WorkloadParams::template("big");
        p.ctas = 64;
        p.warps_per_cta = 2;
        p.iters = 200;
        p.working_set_lines = 2_000;
        spec.program = Arc::new(SyntheticKernel::new(p));
        spec
    }

    #[test]
    fn resilient_batch_reports_partial_results() {
        let specs = vec![
            tiny_spec(MemoryMode::Hierarchy),
            oversized_spec(),
            tiny_spec(MemoryMode::FixedLatency(100)),
        ];
        // A budget the tiny specs clear easily and the oversized one
        // cannot: the batch must still return the two good reports.
        let out = run_benchmarks_resilient(&specs, 20_000, None);
        assert!(!out.all_ok());
        assert!(out.reports[0].is_some(), "tiny run must survive the batch");
        assert!(out.reports[1].is_none(), "failed slot must stay empty");
        assert!(out.reports[2].is_some());
        assert_eq!(out.failures.len(), 1);
        let failure = &out.failures[0];
        assert_eq!(failure.index, 1);
        assert_eq!(failure.benchmark, "big");
        assert_eq!(
            failure.attempts, 1,
            "a deterministic cycle-budget failure must fail fast, not burn retries"
        );
        assert!(matches!(failure.error, SimError::Watchdog { .. }));
    }

    #[test]
    fn resilient_batch_with_no_failures_matches_fail_fast() {
        let specs = vec![
            tiny_spec(MemoryMode::Hierarchy),
            tiny_spec(MemoryMode::FixedLatency(100)),
        ];
        let out = run_benchmarks_resilient(&specs, DEFAULT_MAX_CYCLES, None);
        assert!(out.all_ok());
        let reference = run_benchmarks_parallel(&specs).unwrap();
        for (slot, reference) in out.reports.iter().zip(&reference) {
            let report = slot.as_ref().unwrap();
            assert_eq!(report.cycles, reference.cycles);
            assert_eq!(report.instructions, reference.instructions);
        }
    }

    #[test]
    fn zero_deadline_fails_every_benchmark_after_one_retry() {
        let specs = vec![tiny_spec(MemoryMode::Hierarchy)];
        let out = run_benchmarks_resilient(&specs, DEFAULT_MAX_CYCLES, Some(0.0));
        assert!(out.reports[0].is_none());
        assert_eq!(out.failures.len(), 1);
        assert_eq!(
            out.failures[0].attempts, 2,
            "a host-dependent deadline miss uses the full default budget"
        );
        assert!(matches!(
            out.failures[0].error,
            SimError::DeadlineExceeded { .. }
        ));
    }

    #[test]
    fn retry_budget_applies_only_to_host_dependent_errors() {
        // Host-dependent error: the whole budget is spent.
        let specs = vec![tiny_spec(MemoryMode::Hierarchy)];
        let out = run_benchmarks_resilient_with(
            &specs,
            DEFAULT_MAX_CYCLES,
            Some(0.0),
            &RetryPolicy::immediate(4),
        );
        assert_eq!(out.failures[0].attempts, 4);

        // Deterministic error: one attempt, regardless of the budget.
        let out = run_benchmarks_resilient_with(
            &specs,
            100, // budget far too small: a deterministic Watchdog error
            None,
            &RetryPolicy::immediate(4),
        );
        assert!(matches!(out.failures[0].error, SimError::Watchdog { .. }));
        assert_eq!(out.failures[0].attempts, 1);
    }

    #[test]
    fn retry_helper_counts_attempts_and_stops_on_success() {
        let mut calls = 0;
        let (attempts, out) = retry_with_policy(&RetryPolicy::immediate(5), 7, || {
            calls += 1;
            if calls < 3 {
                Err(SimError::DeadlineExceeded {
                    cycle: 0,
                    budget_seconds: 0.0,
                })
            } else {
                Ok(SimReport::default())
            }
        });
        assert_eq!(attempts, 3);
        assert!(out.is_ok());
    }

    #[test]
    fn backoff_schedule_is_deterministic_exponential_and_capped() {
        let b = Backoff {
            base_ms: 100,
            max_ms: 1000,
            seed: 42,
        };
        for attempt in 1..8 {
            let d1 = b.delay_ms(5, attempt);
            let d2 = b.delay_ms(5, attempt);
            assert_eq!(d1, d2, "delays must be reproducible");
            let exp = (100u64 << (attempt - 1)).min(1000);
            assert!(d1 >= exp, "delay below the exponential floor");
            assert!(d1 <= exp + exp / 2, "jitter above half the delay");
        }
        // Different salts draw different jitter streams.
        let draws: Vec<u64> = (0..16).map(|salt| b.delay_ms(salt, 3)).collect();
        let distinct: std::collections::BTreeSet<u64> = draws.iter().copied().collect();
        assert!(distinct.len() > 1, "jitter must vary across salts");
        assert_eq!(Backoff::NONE.delay_ms(1, 1), 0);
    }
}
