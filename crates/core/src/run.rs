//! Helpers for running benchmarks, serially or across threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

use gpumem_config::GpuConfig;
use gpumem_sim::{GpuSimulator, MemoryMode, SimError, SimReport};
use gpumem_simt::KernelProgram;

/// Default watchdog budget: generous enough for every suite benchmark at
/// every design point, small enough to catch deadlocks quickly.
pub const DEFAULT_MAX_CYCLES: u64 = 50_000_000;

/// One simulation to run: a configuration, a kernel and a memory mode.
#[derive(Clone)]
pub struct RunSpec {
    /// GPU configuration (baseline or a Table I design point).
    pub cfg: GpuConfig,
    /// The kernel to execute.
    pub program: Arc<dyn KernelProgram>,
    /// Memory backend.
    pub mode: MemoryMode,
}

impl std::fmt::Debug for RunSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunSpec")
            .field("program", &self.program.name())
            .field("mode", &self.mode)
            .finish_non_exhaustive()
    }
}

/// Runs one benchmark to completion.
///
/// # Errors
///
/// Propagates [`SimError::Watchdog`] if the run does not complete within
/// [`DEFAULT_MAX_CYCLES`].
pub fn run_benchmark(
    cfg: &GpuConfig,
    program: &Arc<dyn KernelProgram>,
    mode: MemoryMode,
) -> Result<SimReport, SimError> {
    GpuSimulator::new(cfg.clone(), Arc::clone(program), mode).run(DEFAULT_MAX_CYCLES)
}

/// Runs a batch of independent simulations across all available cores,
/// preserving input order in the output.
///
/// # Errors
///
/// Returns the first [`SimError`] encountered (remaining runs still
/// execute; their results are discarded).
pub fn run_benchmarks_parallel(specs: &[RunSpec]) -> Result<Vec<SimReport>, SimError> {
    let n = specs.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<SimReport, SimError>)>();

    thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let spec = &specs[i];
                let out = GpuSimulator::new(spec.cfg.clone(), Arc::clone(&spec.program), spec.mode)
                    .run(DEFAULT_MAX_CYCLES);
                tx.send((i, out)).expect("receiver outlives the scope");
            });
        }
    });
    drop(tx);

    // Workers finish in arbitrary order; reassemble by index so the output
    // order (and the index of the error returned, if any) depends only on
    // the input.
    let mut results: Vec<Option<Result<SimReport, SimError>>> = (0..n).map(|_| None).collect();
    for (i, out) in rx {
        results[i] = Some(out);
    }
    results
        .into_iter()
        .map(|slot| slot.expect("every index was sent by a worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumem_workloads::{SyntheticKernel, WorkloadParams};

    fn tiny_spec(mode: MemoryMode) -> RunSpec {
        let mut cfg = GpuConfig::tiny();
        cfg.num_cores = 2;
        let mut p = WorkloadParams::template("t");
        p.ctas = 4;
        p.warps_per_cta = 2;
        p.iters = 4;
        p.working_set_lines = 2_000;
        RunSpec {
            cfg,
            program: Arc::new(SyntheticKernel::new(p)),
            mode,
        }
    }

    #[test]
    fn serial_run_completes() {
        let spec = tiny_spec(MemoryMode::Hierarchy);
        let report = run_benchmark(&spec.cfg, &spec.program, spec.mode).unwrap();
        assert!(report.instructions > 0);
        assert_eq!(report.benchmark, "t");
    }

    #[test]
    fn parallel_matches_serial_and_preserves_order() {
        let specs = vec![
            tiny_spec(MemoryMode::Hierarchy),
            tiny_spec(MemoryMode::FixedLatency(100)),
            tiny_spec(MemoryMode::FixedLatency(0)),
        ];
        let par = run_benchmarks_parallel(&specs).unwrap();
        assert_eq!(par.len(), 3);
        for (spec, report) in specs.iter().zip(&par) {
            let serial = run_benchmark(&spec.cfg, &spec.program, spec.mode).unwrap();
            assert_eq!(serial.cycles, report.cycles, "determinism across threads");
            assert_eq!(serial.instructions, report.instructions);
        }
        assert_eq!(par[1].mode, "fixed-latency(100)");
        assert_eq!(par[2].mode, "fixed-latency(0)");
    }

    #[test]
    fn empty_batch_is_ok() {
        assert!(run_benchmarks_parallel(&[]).unwrap().is_empty());
    }
}
