//! Helpers for running benchmarks, serially or across threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

use gpumem_config::GpuConfig;
use gpumem_sim::{GpuSimulator, MemoryMode, SimError, SimReport};
use gpumem_simt::KernelProgram;

/// Default watchdog budget: generous enough for every suite benchmark at
/// every design point, small enough to catch deadlocks quickly.
pub const DEFAULT_MAX_CYCLES: u64 = 50_000_000;

/// One simulation to run: a configuration, a kernel and a memory mode.
#[derive(Clone)]
pub struct RunSpec {
    /// GPU configuration (baseline or a Table I design point).
    pub cfg: GpuConfig,
    /// The kernel to execute.
    pub program: Arc<dyn KernelProgram>,
    /// Memory backend.
    pub mode: MemoryMode,
}

impl std::fmt::Debug for RunSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunSpec")
            .field("program", &self.program.name())
            .field("mode", &self.mode)
            .finish_non_exhaustive()
    }
}

/// Runs one benchmark to completion.
///
/// # Errors
///
/// Propagates [`SimError::Watchdog`] if the run does not complete within
/// [`DEFAULT_MAX_CYCLES`].
pub fn run_benchmark(
    cfg: &GpuConfig,
    program: &Arc<dyn KernelProgram>,
    mode: MemoryMode,
) -> Result<SimReport, SimError> {
    GpuSimulator::new(cfg.clone(), Arc::clone(program), mode).run(DEFAULT_MAX_CYCLES)
}

/// Runs a batch of independent simulations across all available cores,
/// preserving input order in the output.
///
/// # Errors
///
/// Returns the first [`SimError`] encountered (remaining runs still
/// execute; their results are discarded).
pub fn run_benchmarks_parallel(specs: &[RunSpec]) -> Result<Vec<SimReport>, SimError> {
    let n = specs.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<SimReport, SimError>)>();

    thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let spec = &specs[i];
                let out = GpuSimulator::new(spec.cfg.clone(), Arc::clone(&spec.program), spec.mode)
                    .run(DEFAULT_MAX_CYCLES);
                tx.send((i, out)).expect("receiver outlives the scope");
            });
        }
    });
    drop(tx);

    // Workers finish in arbitrary order; reassemble by index so the output
    // order (and the index of the error returned, if any) depends only on
    // the input.
    let mut results: Vec<Option<Result<SimReport, SimError>>> = (0..n).map(|_| None).collect();
    for (i, out) in rx {
        results[i] = Some(out);
    }
    results
        .into_iter()
        .map(|slot| slot.expect("every index was sent by a worker"))
        .collect()
}

/// One benchmark that could not be completed by [`run_benchmarks_resilient`],
/// after exhausting its retry budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkFailure {
    /// Index into the input `specs` slice.
    pub index: usize,
    /// The benchmark's name.
    pub benchmark: String,
    /// How many attempts were made (always 2: the run and one retry).
    pub attempts: u32,
    /// The typed error from the last attempt.
    pub error: SimError,
}

/// Outcome of a resilient batch: reports in input order, with `None` at
/// every index that failed, plus a structured record of each failure.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One slot per input spec, in input order.
    pub reports: Vec<Option<SimReport>>,
    /// Benchmarks that failed both attempts, in input order.
    pub failures: Vec<BenchmarkFailure>,
}

impl BatchOutcome {
    /// True when every benchmark in the batch completed.
    pub fn all_ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs a batch of independent simulations across all available cores,
/// degrading gracefully instead of failing the whole batch: each benchmark
/// gets an optional per-run wall-clock budget (`deadline_seconds`), an
/// errored or over-budget run is retried once, and a benchmark that fails
/// both attempts is reported in [`BatchOutcome::failures`] while every
/// other benchmark's report is still returned.
///
/// Deterministic errors (a wedge, a cycle-budget watchdog) will fail the
/// retry identically; the retry exists for host-dependent failures such as
/// a deadline missed on a loaded machine.
pub fn run_benchmarks_resilient(
    specs: &[RunSpec],
    max_cycles: u64,
    deadline_seconds: Option<f64>,
) -> BatchOutcome {
    let n = specs.len();
    if n == 0 {
        return BatchOutcome {
            reports: Vec::new(),
            failures: Vec::new(),
        };
    }
    let workers = thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, u32, Result<SimReport, SimError>)>();

    let attempt = |spec: &RunSpec| {
        let mut sim = GpuSimulator::new(spec.cfg.clone(), Arc::clone(&spec.program), spec.mode);
        sim.set_deadline_seconds(deadline_seconds);
        sim.run(max_cycles)
    };

    thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let spec = &specs[i];
                let (attempts, out) = match attempt(spec) {
                    Ok(report) => (1, Ok(report)),
                    Err(_first) => (2, attempt(spec)),
                };
                tx.send((i, attempts, out))
                    .expect("receiver outlives the scope");
            });
        }
    });
    drop(tx);

    let mut reports: Vec<Option<SimReport>> = (0..n).map(|_| None).collect();
    let mut failures = Vec::new();
    for (i, attempts, out) in rx {
        match out {
            Ok(report) => reports[i] = Some(report),
            Err(error) => failures.push(BenchmarkFailure {
                index: i,
                benchmark: specs[i].program.name().to_owned(),
                attempts,
                error,
            }),
        }
    }
    failures.sort_by_key(|f| f.index);
    BatchOutcome { reports, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumem_workloads::{SyntheticKernel, WorkloadParams};

    fn tiny_spec(mode: MemoryMode) -> RunSpec {
        let mut cfg = GpuConfig::tiny();
        cfg.num_cores = 2;
        let mut p = WorkloadParams::template("t");
        p.ctas = 4;
        p.warps_per_cta = 2;
        p.iters = 4;
        p.working_set_lines = 2_000;
        RunSpec {
            cfg,
            program: Arc::new(SyntheticKernel::new(p)),
            mode,
        }
    }

    #[test]
    fn serial_run_completes() {
        let spec = tiny_spec(MemoryMode::Hierarchy);
        let report = run_benchmark(&spec.cfg, &spec.program, spec.mode).unwrap();
        assert!(report.instructions > 0);
        assert_eq!(report.benchmark, "t");
    }

    #[test]
    fn parallel_matches_serial_and_preserves_order() {
        let specs = vec![
            tiny_spec(MemoryMode::Hierarchy),
            tiny_spec(MemoryMode::FixedLatency(100)),
            tiny_spec(MemoryMode::FixedLatency(0)),
        ];
        let par = run_benchmarks_parallel(&specs).unwrap();
        assert_eq!(par.len(), 3);
        for (spec, report) in specs.iter().zip(&par) {
            let serial = run_benchmark(&spec.cfg, &spec.program, spec.mode).unwrap();
            assert_eq!(serial.cycles, report.cycles, "determinism across threads");
            assert_eq!(serial.instructions, report.instructions);
        }
        assert_eq!(par[1].mode, "fixed-latency(100)");
        assert_eq!(par[2].mode, "fixed-latency(0)");
    }

    #[test]
    fn empty_batch_is_ok() {
        assert!(run_benchmarks_parallel(&[]).unwrap().is_empty());
    }

    /// A spec too big to finish inside a small cycle budget.
    fn oversized_spec() -> RunSpec {
        let mut spec = tiny_spec(MemoryMode::FixedLatency(400));
        let mut p = WorkloadParams::template("big");
        p.ctas = 64;
        p.warps_per_cta = 2;
        p.iters = 200;
        p.working_set_lines = 2_000;
        spec.program = Arc::new(SyntheticKernel::new(p));
        spec
    }

    #[test]
    fn resilient_batch_reports_partial_results() {
        let specs = vec![
            tiny_spec(MemoryMode::Hierarchy),
            oversized_spec(),
            tiny_spec(MemoryMode::FixedLatency(100)),
        ];
        // A budget the tiny specs clear easily and the oversized one
        // cannot: the batch must still return the two good reports.
        let out = run_benchmarks_resilient(&specs, 20_000, None);
        assert!(!out.all_ok());
        assert!(out.reports[0].is_some(), "tiny run must survive the batch");
        assert!(out.reports[1].is_none(), "failed slot must stay empty");
        assert!(out.reports[2].is_some());
        assert_eq!(out.failures.len(), 1);
        let failure = &out.failures[0];
        assert_eq!(failure.index, 1);
        assert_eq!(failure.benchmark, "big");
        assert_eq!(failure.attempts, 2, "an errored run is retried once");
        assert!(matches!(failure.error, SimError::Watchdog { .. }));
    }

    #[test]
    fn resilient_batch_with_no_failures_matches_fail_fast() {
        let specs = vec![
            tiny_spec(MemoryMode::Hierarchy),
            tiny_spec(MemoryMode::FixedLatency(100)),
        ];
        let out = run_benchmarks_resilient(&specs, DEFAULT_MAX_CYCLES, None);
        assert!(out.all_ok());
        let reference = run_benchmarks_parallel(&specs).unwrap();
        for (slot, reference) in out.reports.iter().zip(&reference) {
            let report = slot.as_ref().unwrap();
            assert_eq!(report.cycles, reference.cycles);
            assert_eq!(report.instructions, reference.instructions);
        }
    }

    #[test]
    fn zero_deadline_fails_every_benchmark_after_one_retry() {
        let specs = vec![tiny_spec(MemoryMode::Hierarchy)];
        let out = run_benchmarks_resilient(&specs, DEFAULT_MAX_CYCLES, Some(0.0));
        assert!(out.reports[0].is_none());
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].attempts, 2);
        assert!(matches!(
            out.failures[0].error,
            SimError::DeadlineExceeded { .. }
        ));
    }
}
