//! Section II / Fig. 1: the latency tolerance profile.
//!
//! The baseline architecture is run once to obtain its IPC and its actual
//! average L1 miss latency; then the memory hierarchy below the L1s is
//! replaced by a fixed-latency responder ([`gpumem_sim::MemoryMode::FixedLatency`])
//! and the latency is swept. Each point's IPC is normalized to the
//! baseline's, so the curve crosses 1.0 at the baseline's effective memory
//! latency — the paper's shaded intercept region.

use std::sync::Arc;

use gpumem_config::GpuConfig;
use gpumem_sim::{MemoryMode, SimError};
use gpumem_simt::KernelProgram;
use serde::{Deserialize, Serialize};

use crate::run::{run_benchmark, run_benchmarks_parallel, RunSpec};

/// The x-axis points of the paper's Fig. 1: 0 to 800 cycles in steps of
/// 50.
pub const FIG1_LATENCIES: [u64; 17] = [
    0, 50, 100, 150, 200, 250, 300, 350, 400, 450, 500, 550, 600, 650, 700, 750, 800,
];

/// One point of a latency-tolerance curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyPoint {
    /// The fixed L1 miss latency imposed (x-axis).
    pub latency: u64,
    /// Raw IPC at this latency.
    pub ipc: f64,
    /// IPC normalized to the baseline architecture (y-axis).
    pub normalized_ipc: f64,
}

/// A benchmark's full Fig. 1 curve plus the derived observations the paper
/// makes about it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyProfile {
    /// Benchmark name.
    pub benchmark: String,
    /// Baseline (full-hierarchy) IPC used for normalization.
    pub baseline_ipc: f64,
    /// Baseline average L1 miss latency — where the curve crosses 1.0.
    pub baseline_avg_miss_latency: f64,
    /// The swept curve, in ascending latency order.
    pub points: Vec<LatencyPoint>,
    /// End of the performance plateau: the largest swept latency whose
    /// normalized IPC is still ≥ 95% of the curve's peak, i.e. how much
    /// latency the workload tolerates before losing performance.
    pub plateau_end: u64,
    /// Latency at which the curve crosses normalized IPC 1.0 (linear
    /// interpolation between swept points) — the workload's *effective*
    /// baseline memory latency as seen through performance.
    pub baseline_intercept: Option<f64>,
}

impl LatencyProfile {
    /// Peak normalized IPC over the sweep (the paper's headroom factor:
    /// how much faster the workload would run with a perfect memory
    /// system).
    pub fn peak_normalized_ipc(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.normalized_ipc)
            .fold(0.0, f64::max)
    }

    /// True if the baseline sits beyond the plateau — i.e. reducing memory
    /// latency would measurably improve performance (the paper's central
    /// observation ① for most benchmarks).
    pub fn baseline_beyond_plateau(&self) -> bool {
        match self.baseline_intercept {
            Some(x) => x > self.plateau_end as f64,
            None => true, // baseline latency above the entire sweep
        }
    }
}

fn interpolate_intercept(points: &[LatencyPoint]) -> Option<f64> {
    // Find the first adjacent pair straddling normalized IPC = 1.0
    // (curves decrease with latency).
    for w in points.windows(2) {
        let (a, b) = (w[0], w[1]);
        if (a.normalized_ipc - 1.0) * (b.normalized_ipc - 1.0) <= 0.0
            && a.normalized_ipc != b.normalized_ipc
        {
            let t = (a.normalized_ipc - 1.0) / (a.normalized_ipc - b.normalized_ipc);
            return Some(a.latency as f64 + t * (b.latency as f64 - a.latency as f64));
        }
    }
    None
}

/// Sweeps the latency-tolerance profile of one benchmark.
///
/// # Errors
///
/// Propagates the first watchdog failure from any run.
pub fn latency_tolerance_profile(
    cfg: &GpuConfig,
    program: &Arc<dyn KernelProgram>,
    latencies: &[u64],
) -> Result<LatencyProfile, SimError> {
    let baseline = run_benchmark(cfg, program, MemoryMode::Hierarchy)?;
    let baseline_ipc = baseline.ipc;

    let specs: Vec<RunSpec> = latencies
        .iter()
        .map(|&l| RunSpec {
            cfg: cfg.clone(),
            program: Arc::clone(program),
            mode: MemoryMode::FixedLatency(l),
        })
        .collect();
    let reports = run_benchmarks_parallel(&specs)?;

    let mut points: Vec<LatencyPoint> = latencies
        .iter()
        .zip(&reports)
        .map(|(&latency, r)| LatencyPoint {
            latency,
            ipc: r.ipc,
            normalized_ipc: if baseline_ipc > 0.0 {
                r.ipc / baseline_ipc
            } else {
                0.0
            },
        })
        .collect();
    points.sort_by_key(|p| p.latency);

    let peak = points.iter().map(|p| p.normalized_ipc).fold(0.0, f64::max);
    let plateau_end = points
        .iter()
        .filter(|p| p.normalized_ipc >= 0.95 * peak)
        .map(|p| p.latency)
        .max()
        .unwrap_or(0);

    Ok(LatencyProfile {
        benchmark: program.name().to_owned(),
        baseline_ipc,
        baseline_avg_miss_latency: baseline.avg_l1_miss_latency(),
        baseline_intercept: interpolate_intercept(&points),
        plateau_end,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(points: &[(u64, f64)]) -> Vec<LatencyPoint> {
        points
            .iter()
            .map(|&(latency, normalized_ipc)| LatencyPoint {
                latency,
                ipc: normalized_ipc,
                normalized_ipc,
            })
            .collect()
    }

    #[test]
    fn intercept_interpolates_linearly() {
        let pts = mk(&[(0, 3.0), (100, 2.0), (200, 1.0), (300, 0.5)]);
        assert_eq!(interpolate_intercept(&pts), Some(200.0));
        let pts = mk(&[(0, 2.0), (100, 0.0)]);
        assert_eq!(interpolate_intercept(&pts), Some(50.0));
    }

    #[test]
    fn intercept_none_when_curve_stays_above_one() {
        let pts = mk(&[(0, 3.0), (800, 1.2)]);
        assert_eq!(interpolate_intercept(&pts), None);
    }

    #[test]
    fn profile_helpers() {
        let profile = LatencyProfile {
            benchmark: "x".into(),
            baseline_ipc: 1.0,
            baseline_avg_miss_latency: 400.0,
            points: mk(&[(0, 4.0), (100, 3.9), (200, 2.0), (400, 1.0), (800, 0.4)]),
            plateau_end: 100,
            baseline_intercept: Some(400.0),
        };
        assert_eq!(profile.peak_normalized_ipc(), 4.0);
        assert!(profile.baseline_beyond_plateau());
    }
}
