//! Extension: per-row ablation and cost-effectiveness ranking.
//!
//! The paper's Section V names its future work: *"assess the complexity
//! and cost of the various design configurations in order to evaluate the
//! most cost-effective ways to mitigate the bandwidth bottleneck."* This
//! module implements that study on the simulator: every Table I parameter
//! is scaled **individually** (everything else at baseline), the suite's
//! speedup is measured, and the rows are ranked by speedup gain per unit
//! of estimated hardware cost.

use std::sync::Arc;

use gpumem_config::{single_parameter_ablations, GpuConfig};
use gpumem_sim::{KernelProgram, MemoryMode, SimError};
use serde::{Deserialize, Serialize};

use crate::run::{run_benchmarks_parallel, RunSpec};

/// The measured effect of scaling one Table I row in isolation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Table I row name.
    pub name: String,
    /// Table I section ("DRAM", "L2 Cache", "L1 Cache").
    pub section: String,
    /// Suite-average speedup of the single-row scaling.
    pub avg_speedup: f64,
    /// Per-benchmark speedups, in suite order.
    pub speedups: Vec<(String, f64)>,
    /// Estimated incremental hardware cost in bits (storage + wires).
    pub cost_bits: u64,
}

impl AblationRow {
    /// Speedup gain (speedup − 1) per kilobit of estimated cost — the
    /// cost-effectiveness figure of merit.
    pub fn gain_per_kbit(&self) -> f64 {
        if self.cost_bits == 0 {
            return 0.0;
        }
        (self.avg_speedup - 1.0) / (self.cost_bits as f64 / 1024.0)
    }
}

/// The full per-row ablation study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationStudy {
    /// One row per Table I parameter, in table order.
    pub rows: Vec<AblationRow>,
}

impl AblationStudy {
    /// Rows ranked by cost-effectiveness, best first.
    pub fn ranked_by_cost_effectiveness(&self) -> Vec<&AblationRow> {
        let mut ranked: Vec<&AblationRow> = self.rows.iter().collect();
        ranked.sort_by(|a, b| {
            b.gain_per_kbit()
                .partial_cmp(&a.gain_per_kbit())
                .expect("finite figures of merit")
        });
        ranked
    }

    /// The row with the highest raw speedup.
    pub fn best_single_row(&self) -> Option<&AblationRow> {
        self.rows.iter().max_by(|a, b| {
            a.avg_speedup
                .partial_cmp(&b.avg_speedup)
                .expect("finite speedups")
        })
    }
}

/// Runs the per-row ablation study over `programs`.
///
/// # Errors
///
/// Propagates the first watchdog failure from any run.
pub fn ablation_study(
    cfg: &GpuConfig,
    programs: &[Arc<dyn KernelProgram>],
) -> Result<AblationStudy, SimError> {
    let ablations = single_parameter_ablations(cfg);
    let mut specs: Vec<RunSpec> = Vec::with_capacity(programs.len() * (ablations.len() + 1));
    for p in programs {
        specs.push(RunSpec {
            cfg: cfg.clone(),
            program: Arc::clone(p),
            mode: MemoryMode::Hierarchy,
        });
    }
    for a in &ablations {
        for p in programs {
            specs.push(RunSpec {
                cfg: a.config.clone(),
                program: Arc::clone(p),
                mode: MemoryMode::Hierarchy,
            });
        }
    }
    let reports = run_benchmarks_parallel(&specs)?;

    let n = programs.len();
    let baseline: Vec<(String, f64)> = reports[..n]
        .iter()
        .map(|r| (r.benchmark.clone(), r.ipc))
        .collect();

    let rows = ablations
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let chunk = &reports[n * (i + 1)..n * (i + 2)];
            let speedups: Vec<(String, f64)> = chunk
                .iter()
                .zip(&baseline)
                .map(|(r, (name, base))| {
                    (name.clone(), if *base > 0.0 { r.ipc / base } else { 1.0 })
                })
                .collect();
            let avg = if speedups.is_empty() {
                1.0
            } else {
                speedups.iter().map(|(_, s)| s).sum::<f64>() / speedups.len() as f64
            };
            AblationRow {
                name: a.name.to_owned(),
                section: a.section.to_owned(),
                avg_speedup: avg,
                speedups,
                cost_bits: a.cost_bits,
            }
        })
        .collect();

    Ok(AblationStudy { rows })
}

/// Renders the study as a ranked plain-text table.
pub fn ablation_table(study: &AblationStudy) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "PER-ROW ABLATION — each Table I parameter scaled alone (paper §V future work)"
    );
    let _ = writeln!(
        out,
        "{:>24} {:>10} {:>10} {:>12} {:>14}",
        "parameter", "section", "speedup", "cost (kbit)", "gain/kbit"
    );
    for row in study.ranked_by_cost_effectiveness() {
        let _ = writeln!(
            out,
            "{:>24} {:>10} {:>10.3} {:>12.1} {:>14.6}",
            row.name,
            row.section,
            row.avg_speedup,
            row.cost_bits as f64 / 1024.0,
            row.gain_per_kbit(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, speedup: f64, cost: u64) -> AblationRow {
        AblationRow {
            name: name.into(),
            section: "L2 Cache".into(),
            avg_speedup: speedup,
            speedups: vec![("x".into(), speedup)],
            cost_bits: cost,
        }
    }

    #[test]
    fn ranking_prefers_cheap_gains() {
        let study = AblationStudy {
            rows: vec![
                row("big-expensive", 1.5, 1_000_000),
                row("small-cheap", 1.1, 1_024),
            ],
        };
        let ranked = study.ranked_by_cost_effectiveness();
        assert_eq!(ranked[0].name, "small-cheap");
        assert_eq!(study.best_single_row().unwrap().name, "big-expensive");
    }

    #[test]
    fn gain_per_kbit_math() {
        let r = row("r", 1.5, 2048);
        assert!((r.gain_per_kbit() - 0.25).abs() < 1e-12);
        assert_eq!(row("z", 1.5, 0).gain_per_kbit(), 0.0);
    }

    #[test]
    fn table_renders_every_row() {
        let study = AblationStudy {
            rows: vec![row("a", 1.2, 100), row("b", 0.9, 200)],
        };
        let t = ablation_table(&study);
        assert!(t.contains(" a "));
        assert!(t.contains(" b "));
        assert!(t.contains("gain/kbit"));
    }
}
