//! Section IV: design-space exploration over the Table I parameters.
//!
//! Each selected level of the memory hierarchy has its Table I parameters
//! scaled to ~4× ([`DesignPoint::apply`]); each benchmark is re-run and its
//! speedup over the baseline recorded. The paper's headline averages:
//! **L1 +4%**, **L2 +59%**, **DRAM +11%** in isolation, **L1+L2 +69%** and
//! **L2+DRAM +76%** combined — with the combined gains exceeding the sums
//! of their parts (synergy), and isolated L1 scaling *degrading* some
//! benchmarks.

use std::sync::Arc;

use gpumem_config::{DesignPoint, GpuConfig};
use gpumem_sim::{MemoryMode, SimError};
use gpumem_simt::KernelProgram;
use serde::{Deserialize, Serialize};

use crate::run::{run_benchmarks_parallel, RunSpec};

/// Speedups of one design point over the baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DsePointResult {
    /// The design point evaluated.
    pub design: DesignPoint,
    /// Per-benchmark speedup (IPC ratio vs. baseline), in suite order.
    pub speedups: Vec<(String, f64)>,
}

impl DsePointResult {
    /// Arithmetic-mean speedup over the suite (the paper's "average
    /// speedup").
    pub fn average_speedup(&self) -> f64 {
        if self.speedups.is_empty() {
            return 1.0;
        }
        self.speedups.iter().map(|(_, s)| s).sum::<f64>() / self.speedups.len() as f64
    }

    /// Geometric-mean speedup over the suite.
    pub fn geomean_speedup(&self) -> f64 {
        if self.speedups.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self.speedups.iter().map(|(_, s)| s.ln()).sum();
        (log_sum / self.speedups.len() as f64).exp()
    }

    /// Benchmarks this design point *slowed down* (speedup < 1), the
    /// paper's counter-productivity observation for isolated scaling.
    pub fn degraded(&self) -> Vec<&str> {
        self.speedups
            .iter()
            .filter(|(_, s)| *s < 1.0)
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

/// The full Section IV study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DseStudy {
    /// Baseline IPC per benchmark, in suite order.
    pub baseline_ipc: Vec<(String, f64)>,
    /// Results per design point, in the order supplied.
    pub points: Vec<DsePointResult>,
}

impl DseStudy {
    /// The result for a specific design point, if it was evaluated.
    pub fn result_for(&self, design: DesignPoint) -> Option<&DsePointResult> {
        self.points.iter().find(|p| p.design == design)
    }

    /// Checks the paper's synergy claim for `combined = a + b`: the
    /// combined average speedup *gain* exceeds the sum of the isolated
    /// gains. Returns `None` if any of the three points is missing.
    pub fn synergy_exceeds_sum(
        &self,
        a: DesignPoint,
        b: DesignPoint,
        combined: DesignPoint,
    ) -> Option<bool> {
        let ga = self.result_for(a)?.average_speedup() - 1.0;
        let gb = self.result_for(b)?.average_speedup() - 1.0;
        let gc = self.result_for(combined)?.average_speedup() - 1.0;
        Some(gc > ga + gb)
    }
}

/// Runs the design-space exploration: the baseline plus every design point
/// in `points`, for every benchmark in `programs`.
///
/// # Errors
///
/// Propagates the first watchdog failure from any run.
pub fn design_space_exploration(
    cfg: &GpuConfig,
    programs: &[Arc<dyn KernelProgram>],
    points: &[DesignPoint],
) -> Result<DseStudy, SimError> {
    // Flatten (design-point × benchmark) into one parallel batch, baseline
    // first.
    let mut specs: Vec<RunSpec> = Vec::with_capacity(programs.len() * (points.len() + 1));
    for p in programs {
        specs.push(RunSpec {
            cfg: cfg.clone(),
            program: Arc::clone(p),
            mode: MemoryMode::Hierarchy,
        });
    }
    for dp in points {
        let scaled = dp.apply(cfg);
        for p in programs {
            specs.push(RunSpec {
                cfg: scaled.clone(),
                program: Arc::clone(p),
                mode: MemoryMode::Hierarchy,
            });
        }
    }
    let reports = run_benchmarks_parallel(&specs)?;

    let n = programs.len();
    let baseline_ipc: Vec<(String, f64)> = reports[..n]
        .iter()
        .map(|r| (r.benchmark.clone(), r.ipc))
        .collect();

    let mut results = Vec::with_capacity(points.len());
    for (i, dp) in points.iter().enumerate() {
        let chunk = &reports[n * (i + 1)..n * (i + 2)];
        let speedups = chunk
            .iter()
            .zip(&baseline_ipc)
            .map(|(r, (name, base))| {
                debug_assert_eq!(&r.benchmark, name);
                (name.clone(), if *base > 0.0 { r.ipc / base } else { 1.0 })
            })
            .collect();
        results.push(DsePointResult {
            design: *dp,
            speedups,
        });
    }

    Ok(DseStudy {
        baseline_ipc,
        points: results,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(design: DesignPoint, speedups: &[f64]) -> DsePointResult {
        DsePointResult {
            design,
            speedups: speedups
                .iter()
                .enumerate()
                .map(|(i, &s)| (format!("b{i}"), s))
                .collect(),
        }
    }

    #[test]
    fn averages() {
        let p = point(DesignPoint::L2_ONLY, &[1.0, 2.0, 4.0]);
        assert!((p.average_speedup() - 7.0 / 3.0).abs() < 1e-12);
        assert!((p.geomean_speedup() - 2.0).abs() < 1e-12);
        assert!(p.degraded().is_empty());
    }

    #[test]
    fn degraded_lists_slowdowns() {
        let p = point(DesignPoint::L1_ONLY, &[1.1, 0.9, 1.0]);
        assert_eq!(p.degraded(), vec!["b1"]);
    }

    #[test]
    fn synergy_check() {
        let study = DseStudy {
            baseline_ipc: vec![],
            points: vec![
                point(DesignPoint::L1_ONLY, &[1.04]),
                point(DesignPoint::L2_ONLY, &[1.59]),
                point(DesignPoint::L1_L2, &[1.69]),
            ],
        };
        assert_eq!(
            study.synergy_exceeds_sum(
                DesignPoint::L1_ONLY,
                DesignPoint::L2_ONLY,
                DesignPoint::L1_L2
            ),
            Some(true)
        );
        assert_eq!(
            study.synergy_exceeds_sum(
                DesignPoint::DRAM_ONLY,
                DesignPoint::L2_ONLY,
                DesignPoint::L2_DRAM
            ),
            None
        );
    }

    #[test]
    fn empty_point_defaults_to_unity() {
        let p = point(DesignPoint::BASELINE, &[]);
        assert_eq!(p.average_speedup(), 1.0);
        assert_eq!(p.geomean_speedup(), 1.0);
    }
}
