//! The paper's three experiments.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`latency_tolerance`] | Fig. 1 — normalized IPC vs fixed L1 miss latency |
//! | [`congestion`] | Section III — queue-full fractions (46% / 39%) |
//! | [`design_space`] | Table I / Section IV — ~4× scaling speedups |
//! | [`ablation`] | Section V future work — per-row ablation & cost-effectiveness |

pub mod ablation;
pub mod congestion;
pub mod design_space;
pub mod latency_tolerance;
