//! Section III: measuring the bandwidth bottleneck as queue congestion.
//!
//! The paper quantifies congestion by how often the bounded queues of the
//! memory system are *full* during their *usage lifetime* (cycles
//! non-empty): **46%** for the L2 access queues and **39%** for the DRAM
//! scheduler queues, averaged over the suite.

use std::sync::Arc;

use gpumem_config::GpuConfig;
use gpumem_sim::{MemoryMode, SimError, SimReport};
use gpumem_simt::KernelProgram;
use serde::{Deserialize, Serialize};

use crate::run::{run_benchmarks_parallel, RunSpec};

/// Congestion metrics for one benchmark on one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CongestionRow {
    /// Benchmark name.
    pub benchmark: String,
    /// IPC of the run (context).
    pub ipc: f64,
    /// Fraction of its usage lifetime the L2 access queue was full.
    pub l2_access_full: f64,
    /// Fraction of its usage lifetime the DRAM scheduler queue was full.
    pub dram_sched_full: f64,
    /// Mean L2 access-queue occupancy (entries).
    pub l2_access_mean_occupancy: f64,
    /// Mean DRAM scheduler-queue occupancy (entries).
    pub dram_sched_mean_occupancy: f64,
    /// Average observed L1 miss latency (loaded, cf. the 120/220-cycle
    /// ideals).
    pub avg_l1_miss_latency: f64,
    /// Fraction of core cycles stalled on memory.
    pub memory_stall_fraction: f64,
}

impl CongestionRow {
    /// Extracts the congestion metrics from a hierarchy-mode report.
    ///
    /// # Panics
    ///
    /// Panics if the report lacks L2/DRAM sections (fixed-latency mode).
    pub fn from_report(report: &SimReport) -> Self {
        let l2 = report.l2.as_ref().expect("hierarchy-mode report");
        let dram = report.dram.as_ref().expect("hierarchy-mode report");
        CongestionRow {
            benchmark: report.benchmark.clone(),
            ipc: report.ipc,
            l2_access_full: l2.access_queue.full_fraction_of_usage(),
            dram_sched_full: dram.scheduler_queue.full_fraction_of_usage(),
            l2_access_mean_occupancy: l2.access_queue.mean_occupancy(),
            dram_sched_mean_occupancy: dram.scheduler_queue.mean_occupancy(),
            avg_l1_miss_latency: report.avg_l1_miss_latency(),
            memory_stall_fraction: report.memory_stall_fraction(),
        }
    }
}

/// The Section III study over a benchmark suite.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CongestionStudy {
    /// Per-benchmark rows.
    pub rows: Vec<CongestionRow>,
    /// Suite average of the L2 access-queue full fraction (paper: 0.46).
    pub avg_l2_access_full: f64,
    /// Suite average of the DRAM scheduler-queue full fraction (paper:
    /// 0.39).
    pub avg_dram_sched_full: f64,
}

/// Runs the congestion study: every benchmark on the baseline hierarchy.
///
/// # Errors
///
/// Propagates the first watchdog failure from any run.
pub fn congestion_study(
    cfg: &GpuConfig,
    programs: &[Arc<dyn KernelProgram>],
) -> Result<CongestionStudy, SimError> {
    let specs: Vec<RunSpec> = programs
        .iter()
        .map(|p| RunSpec {
            cfg: cfg.clone(),
            program: Arc::clone(p),
            mode: MemoryMode::Hierarchy,
        })
        .collect();
    let reports = run_benchmarks_parallel(&specs)?;
    let rows: Vec<CongestionRow> = reports.iter().map(CongestionRow::from_report).collect();
    let n = rows.len().max(1) as f64;
    let avg_l2_access_full = rows.iter().map(|r| r.l2_access_full).sum::<f64>() / n;
    let avg_dram_sched_full = rows.iter().map(|r| r.dram_sched_full).sum::<f64>() / n;
    Ok(CongestionStudy {
        rows,
        avg_l2_access_full,
        avg_dram_sched_full,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_over_rows() {
        let mk = |name: &str, l2: f64, dram: f64| CongestionRow {
            benchmark: name.into(),
            ipc: 1.0,
            l2_access_full: l2,
            dram_sched_full: dram,
            l2_access_mean_occupancy: 0.0,
            dram_sched_mean_occupancy: 0.0,
            avg_l1_miss_latency: 0.0,
            memory_stall_fraction: 0.0,
        };
        let rows = vec![mk("a", 0.4, 0.3), mk("b", 0.6, 0.5)];
        let n = rows.len() as f64;
        let study = CongestionStudy {
            avg_l2_access_full: rows.iter().map(|r| r.l2_access_full).sum::<f64>() / n,
            avg_dram_sched_full: rows.iter().map(|r| r.dram_sched_full).sum::<f64>() / n,
            rows,
        };
        assert!((study.avg_l2_access_full - 0.5).abs() < 1e-12);
        assert!((study.avg_dram_sched_full - 0.4).abs() < 1e-12);
    }
}
