//! Fetch-lifecycle tracing for the gpumem simulator.
//!
//! The paper's core methodology is *measurement*: decomposing the memory
//! latency seen by a warp into queueing and service components and locating
//! the congestion (§III, Fig. 4–6). This crate supplies the observability
//! layer that makes the reproduction's decomposition visible: every
//! [`MemFetch`] already carries a [`FetchTimeline`] of per-stage timestamps,
//! stamped by the component that owns each transition; a [`TraceCollector`]
//! turns completed timelines into per-stage [`Log2Histogram`]s, and
//! [`OccupancyProbe`]s record per-component queue-depth time series on a
//! deterministic cycle cadence.
//!
//! Design rules that keep traced runs bit-identical across all three
//! engines (`run_stepped`, horizon-skip `run`, sharded `run_parallel`):
//!
//! * Components only *stamp* timestamps; histograms are recorded at a single
//!   point — the owning core's response-acceptance path — from the fetch's
//!   own completed timeline, so recording order never depends on thread
//!   interleaving.
//! * Histogram merge is an element-wise sum (commutative + associative), and
//!   the final report merges per-core collectors in core-index order.
//! * Occupancy sampling is a pure function of the cycle number
//!   (`now % cadence == 0`, sampled at pre-step state), so the horizon-skip
//!   engine can backfill skipped stretches with the frozen depth.
//!
//! The stage taxonomy telescopes: consecutive stamps partition the closed
//! interval `issued..returned`, so the per-fetch stage durations sum
//! *exactly* to the end-to-end latency — the reconciliation invariant the
//! golden-trace suite asserts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

use gpumem_types::{AccessKind, Cycle, FetchTimeline, Log2Histogram, MemFetch};

/// The timestamps of [`FetchTimeline`], in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stamp {
    Issued,
    L1Miss,
    IcntInject,
    L2Arrive,
    L2Serve,
    DramArrive,
    DramIssue,
    DramData,
    RespInject,
    Returned,
}

/// One lifecycle stage: the interval between two consecutive stamped
/// timestamps of a fetch's pipeline traversal.
///
/// Not every fetch passes through every stage — an L1 hit is a single
/// [`Stage::L1Hit`] span, an L2 hit skips the DRAM stages, and the
/// fixed-latency memory mode collapses everything below the interconnect
/// into [`Stage::FixedMemory`]. Whatever the path, the spans of one fetch
/// telescope over `issued..returned`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// `issued → returned` when the access hit in L1 (no other stamps).
    L1Hit,
    /// `issued → l1_miss`: LSU queue wait plus the L1 lookup.
    IssueToL1,
    /// `l1_miss → returned` for an access merged into an outstanding L1
    /// MSHR entry: it waits on someone else's fill.
    L1MergeWait,
    /// `l1_miss → icnt_inject`: L1 miss-queue wait for an interconnect slot.
    L1ToIcnt,
    /// `icnt_inject → l2_arrive`: request crossbar traversal.
    ReqNoc,
    /// `l2_arrive → l2_serve`: L2 access-queue wait (the paper's 46% locus).
    L2Queue,
    /// `l2_serve → resp_inject` when the L2 lookup hit: banked L2 service.
    L2Service,
    /// `l2_serve → dram_arrive`: L2 miss pipeline + DRAM admission wait.
    L2ToDram,
    /// `dram_arrive → dram_issue`: DRAM scheduler-queue wait under FR-FCFS
    /// (the paper's 39% locus).
    DramQueue,
    /// `dram_issue → dram_data`: row activate + burst transfer.
    DramService,
    /// `dram_data → resp_inject`: DRAM return path back through the L2 fill.
    DramToResp,
    /// `resp_inject → returned`: response crossbar traversal and L1 fill.
    RespNoc,
    /// `icnt_inject → returned` in fixed-latency memory mode.
    FixedMemory,
    /// `dram_arrive → dram_issue` for the write path (stores and L2
    /// writebacks, which terminate at DRAM and produce no response).
    WbQueue,
    /// `dram_issue → dram_data` for the write path.
    WbService,
}

/// The paper's Fig. 4–6 decomposition class of a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageClass {
    /// Time spent waiting in a queue for a downstream resource.
    Queueing,
    /// Time spent actually being serviced by a component.
    Service,
    /// Interconnect traversal (reported separately from both).
    Network,
}

impl Stage {
    /// Every stage, in canonical report order.
    pub const ALL: [Stage; 15] = [
        Stage::L1Hit,
        Stage::IssueToL1,
        Stage::L1MergeWait,
        Stage::L1ToIcnt,
        Stage::ReqNoc,
        Stage::L2Queue,
        Stage::L2Service,
        Stage::L2ToDram,
        Stage::DramQueue,
        Stage::DramService,
        Stage::DramToResp,
        Stage::RespNoc,
        Stage::FixedMemory,
        Stage::WbQueue,
        Stage::WbService,
    ];

    /// Stable snake_case name used in reports and golden files.
    pub fn name(self) -> &'static str {
        match self {
            Stage::L1Hit => "l1_hit",
            Stage::IssueToL1 => "issue_to_l1",
            Stage::L1MergeWait => "l1_merge_wait",
            Stage::L1ToIcnt => "l1_to_icnt",
            Stage::ReqNoc => "req_noc",
            Stage::L2Queue => "l2_queue",
            Stage::L2Service => "l2_service",
            Stage::L2ToDram => "l2_to_dram",
            Stage::DramQueue => "dram_queue",
            Stage::DramService => "dram_service",
            Stage::DramToResp => "dram_to_resp",
            Stage::RespNoc => "resp_noc",
            Stage::FixedMemory => "fixed_memory",
            Stage::WbQueue => "wb_queue",
            Stage::WbService => "wb_service",
        }
    }

    /// Queueing / service / network classification.
    pub fn class(self) -> StageClass {
        match self {
            Stage::L1ToIcnt
            | Stage::L1MergeWait
            | Stage::L2Queue
            | Stage::L2ToDram
            | Stage::DramQueue
            | Stage::DramToResp
            | Stage::WbQueue => StageClass::Queueing,
            Stage::L1Hit
            | Stage::IssueToL1
            | Stage::L2Service
            | Stage::DramService
            | Stage::FixedMemory
            | Stage::WbService => StageClass::Service,
            Stage::ReqNoc | Stage::RespNoc => StageClass::Network,
        }
    }

    /// True for stages that lie on a load's `issued..returned` path and so
    /// participate in the stage-sum ↔ end-to-end reconciliation (the DRAM
    /// write-path stages do not: writes never return).
    pub fn on_load_path(self) -> bool {
        !matches!(self, Stage::WbQueue | Stage::WbService)
    }

    fn index(self) -> usize {
        self as usize
    }
}

impl StageClass {
    /// Stable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            StageClass::Queueing => "queueing",
            StageClass::Service => "service",
            StageClass::Network => "network",
        }
    }
}

/// Maps an adjacent stamped pair to its stage. `None` means the pair does
/// not correspond to any modeled pipeline path (counted, never recorded).
fn stage_of(prev: Stamp, next: Stamp) -> Option<Stage> {
    match (prev, next) {
        (Stamp::Issued, Stamp::Returned) => Some(Stage::L1Hit),
        (Stamp::Issued, Stamp::L1Miss) => Some(Stage::IssueToL1),
        (Stamp::L1Miss, Stamp::Returned) => Some(Stage::L1MergeWait),
        (Stamp::L1Miss, Stamp::IcntInject) => Some(Stage::L1ToIcnt),
        (Stamp::IcntInject, Stamp::L2Arrive) => Some(Stage::ReqNoc),
        (Stamp::IcntInject, Stamp::Returned) => Some(Stage::FixedMemory),
        (Stamp::L2Arrive, Stamp::L2Serve) => Some(Stage::L2Queue),
        (Stamp::L2Serve, Stamp::RespInject) => Some(Stage::L2Service),
        (Stamp::L2Serve, Stamp::DramArrive) => Some(Stage::L2ToDram),
        (Stamp::DramArrive, Stamp::DramIssue) => Some(Stage::DramQueue),
        (Stamp::DramIssue, Stamp::DramData) => Some(Stage::DramService),
        (Stamp::DramData, Stamp::RespInject) => Some(Stage::DramToResp),
        (Stamp::RespInject, Stamp::Returned) => Some(Stage::RespNoc),
        _ => None,
    }
}

/// Result of walking one timeline: the derived spans plus the anomaly
/// counters the proptests assert stay zero on real runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanWalk {
    /// `(stage, start, end)` for every adjacent stamped pair, in pipeline
    /// order. `start <= end` always (violating pairs are skipped).
    pub spans: Vec<(Stage, u64, u64)>,
    /// Adjacent pairs whose later stamp precedes the earlier one.
    pub monotone_violations: u64,
    /// Adjacent pairs that match no modeled pipeline path.
    pub unknown_pairs: u64,
}

/// Walks a completed timeline into its telescoping stage spans.
pub fn stage_spans(t: &FetchTimeline) -> SpanWalk {
    let stamps = [
        (Stamp::Issued, t.issued),
        (Stamp::L1Miss, t.l1_miss),
        (Stamp::IcntInject, t.icnt_inject),
        (Stamp::L2Arrive, t.l2_arrive),
        (Stamp::L2Serve, t.l2_serve),
        (Stamp::DramArrive, t.dram_arrive),
        (Stamp::DramIssue, t.dram_issue),
        (Stamp::DramData, t.dram_data),
        (Stamp::RespInject, t.resp_inject),
        (Stamp::Returned, t.returned),
    ];
    let mut walk = SpanWalk::default();
    let mut prev: Option<(Stamp, Cycle)> = None;
    for (kind, at) in stamps {
        let Some(at) = at else { continue };
        if let Some((pk, pc)) = prev {
            if at < pc {
                walk.monotone_violations += 1;
            } else {
                match stage_of(pk, kind) {
                    Some(stage) => walk.spans.push((stage, pc.raw(), at.raw())),
                    None => walk.unknown_pairs += 1,
                }
            }
        }
        prev = Some((kind, at));
    }
    walk
}

/// Tracing knobs. The defaults keep memory bounded on full-length runs
/// while still resolving the congestion features the paper discusses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Sample queue occupancy on cycles where `now % occupancy_cadence == 0`.
    pub occupancy_cadence: u64,
    /// Stop sampling a series after this many points (deterministic cutoff).
    pub max_occupancy_samples: usize,
    /// Slowest fetches retained per core while the run is in flight.
    pub slowest_per_core: usize,
    /// Slowest fetches surfaced in the final report / Chrome export.
    pub slowest_reported: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            occupancy_cadence: 1024,
            max_occupancy_samples: 512,
            slowest_per_core: 32,
            slowest_reported: 16,
        }
    }
}

/// A queue-depth time series sampled on the deterministic cadence.
///
/// Sampling is a pure function of the cycle number, so the horizon-skip
/// engine backfills skipped stretches (during which the machine is provably
/// inert) with the frozen depth and stays bit-identical to per-cycle
/// stepping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancyProbe {
    cadence: u64,
    max_samples: usize,
    samples: Vec<OccupancyPoint>,
}

impl OccupancyProbe {
    /// Creates an empty probe.
    pub fn new(cfg: &TraceConfig) -> Self {
        OccupancyProbe {
            cadence: cfg.occupancy_cadence.max(1),
            max_samples: cfg.max_occupancy_samples,
            samples: Vec::new(),
        }
    }

    /// Records `depth` if `now` lies on the cadence and the cap allows.
    /// Call once per stepped cycle, at pre-step state.
    #[inline]
    pub fn sample(&mut self, now: Cycle, depth: u64) {
        if now.raw().is_multiple_of(self.cadence) && self.samples.len() < self.max_samples {
            self.samples.push(OccupancyPoint {
                cycle: now.raw(),
                depth,
            });
        }
    }

    /// Records the frozen `depth` at every cadence point in
    /// `[start, start + cycles)` — the stretch a fast-forward skipped.
    pub fn backfill(&mut self, start: Cycle, cycles: u64, depth: u64) {
        let start = start.raw();
        let Some(end) = start.checked_add(cycles) else {
            return;
        };
        // First cadence multiple >= start.
        let mut c = start.div_ceil(self.cadence).saturating_mul(self.cadence);
        while c < end && self.samples.len() < self.max_samples {
            self.samples.push(OccupancyPoint { cycle: c, depth });
            c = match c.checked_add(self.cadence) {
                Some(next) => next,
                None => break,
            };
        }
    }

    /// The sampled points, in cycle order.
    pub fn points(&self) -> &[OccupancyPoint] {
        &self.samples
    }

    /// The sampling cadence.
    pub fn cadence(&self) -> u64 {
        self.cadence
    }

    /// Consumes the probe into a named series for the report.
    pub fn into_series(self, component: String, queue: &'static str) -> OccupancySeries {
        OccupancySeries {
            component,
            queue: queue.to_owned(),
            cadence: self.cadence,
            samples: self.samples,
        }
    }

    /// Snapshots the probe into a named series without consuming it (the
    /// report builder reads live probes through shared references).
    pub fn to_series(&self, component: String, queue: &'static str) -> OccupancySeries {
        OccupancySeries {
            component,
            queue: queue.to_owned(),
            cadence: self.cadence,
            samples: self.samples.clone(),
        }
    }
}

/// A compact record of one slow fetch, kept while the run is in flight.
/// Everything is `Copy` so capture stays allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlowSeed {
    latency: u64,
    fetch_id: u64,
    core: u64,
    partition: i64,
    line: u64,
    is_store: bool,
    timeline: FetchTimeline,
}

/// Accumulates the latency breakdown for one shard-owned component (one
/// SIMT core). Per-core collectors are merged in core-index order by the
/// report builder; every operation is commutative, so the merged result is
/// independent of engine and thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCollector {
    cfg: TraceConfig,
    stage_hist: Vec<Log2Histogram>,
    end_to_end: Log2Histogram,
    fetches_traced: u64,
    incomplete: u64,
    monotone_violations: u64,
    unknown_pairs: u64,
    slowest: Vec<SlowSeed>,
    /// Once the retained set has been compacted to capacity, any seed with a
    /// latency strictly below this floor can never enter the top set.
    slow_floor: Option<u64>,
}

impl TraceCollector {
    /// Creates an empty collector.
    pub fn new(cfg: TraceConfig) -> Self {
        TraceCollector {
            cfg,
            stage_hist: vec![Log2Histogram::new(); Stage::ALL.len()],
            end_to_end: Log2Histogram::new(),
            fetches_traced: 0,
            incomplete: 0,
            monotone_violations: 0,
            unknown_pairs: 0,
            slowest: Vec::new(),
            slow_floor: None,
        }
    }

    /// Records a completed fetch from its own timeline. Called at the single
    /// completion point (the core's response-acceptance / L1-hit pop path).
    pub fn record_fetch(&mut self, fetch: &MemFetch) {
        let t = &fetch.timeline;
        let (Some(issued), Some(returned)) = (t.issued, t.returned) else {
            self.incomplete += 1;
            return;
        };
        let walk = stage_spans(t);
        self.monotone_violations += walk.monotone_violations;
        self.unknown_pairs += walk.unknown_pairs;
        for (stage, start, end) in &walk.spans {
            self.stage_hist[stage.index()].record(end - start);
        }
        let latency = returned.since(issued);
        self.end_to_end.record(latency);
        self.fetches_traced += 1;
        self.offer_slow(SlowSeed {
            latency,
            fetch_id: fetch.id.raw(),
            core: fetch.core.index() as u64,
            partition: fetch.partition.map_or(-1, |p| p.index() as i64),
            line: fetch.line.index(),
            is_store: matches!(fetch.kind, AccessKind::Store),
            timeline: *t,
        });
    }

    /// Folds an externally accumulated write-path histogram (the DRAM
    /// channel's, whose fetches terminate there) into a stage slot.
    pub fn absorb_stage(&mut self, stage: Stage, hist: &Log2Histogram) {
        self.stage_hist[stage.index()].merge(hist);
    }

    fn offer_slow(&mut self, seed: SlowSeed) {
        if let Some(floor) = self.slow_floor {
            // Strictly below the floor can never displace a retained seed;
            // equal-latency seeds go through so id tie-breaking stays exact.
            if seed.latency < floor {
                return;
            }
        }
        let cap = self.cfg.slowest_per_core.max(1);
        self.slowest.push(seed);
        if self.slowest.len() >= cap * 2 {
            self.compact_slow(cap);
        }
    }

    fn compact_slow(&mut self, cap: usize) {
        // Slowest first; ties (impossible between distinct fetches of one
        // run, but cheap to pin down) broken by ascending fetch id.
        self.slowest
            .sort_by(|a, b| b.latency.cmp(&a.latency).then(a.fetch_id.cmp(&b.fetch_id)));
        self.slowest.truncate(cap);
        if self.slowest.len() == cap {
            self.slow_floor = Some(self.slowest[cap - 1].latency);
        }
    }

    /// Merges another collector (e.g. another core's) into this one.
    pub fn merge(&mut self, other: &TraceCollector) {
        for (a, b) in self.stage_hist.iter_mut().zip(&other.stage_hist) {
            a.merge(b);
        }
        self.end_to_end.merge(&other.end_to_end);
        self.fetches_traced += other.fetches_traced;
        self.incomplete += other.incomplete;
        self.monotone_violations += other.monotone_violations;
        self.unknown_pairs += other.unknown_pairs;
        self.slowest.extend_from_slice(&other.slowest);
        self.compact_slow(self.cfg.slowest_per_core.max(1));
    }

    /// Builds the report section, attaching the given occupancy series.
    pub fn breakdown(&self, occupancy: Vec<OccupancySeries>) -> LatencyBreakdown {
        let mut stages = Vec::new();
        let mut class_totals = [0u64; 3];
        let mut stage_total = 0u64;
        for stage in Stage::ALL {
            let hist = &self.stage_hist[stage.index()];
            if hist.count() == 0 {
                continue;
            }
            let class = stage.class();
            if stage.on_load_path() {
                stage_total += hist.sum();
                class_totals[class as usize] += hist.sum();
            }
            stages.push(StageStat {
                stage: stage.name().to_owned(),
                class: class.name().to_owned(),
                count: hist.count(),
                total_cycles: hist.sum(),
                mean: hist.mean(),
                min: hist.min().unwrap_or(0),
                max: hist.max().unwrap_or(0),
                histogram: hist.clone(),
            });
        }
        let mut seeds = self.slowest.clone();
        seeds.sort_by(|a, b| b.latency.cmp(&a.latency).then(a.fetch_id.cmp(&b.fetch_id)));
        seeds.truncate(self.cfg.slowest_reported);
        let slowest = seeds
            .iter()
            .map(|s| SlowFetch {
                fetch_id: s.fetch_id,
                core: s.core,
                partition: s.partition,
                line: s.line,
                kind: if s.is_store { "store" } else { "load" }.to_owned(),
                latency: s.latency,
                spans: stage_spans(&s.timeline)
                    .spans
                    .iter()
                    .map(|(stage, start, end)| StageSpan {
                        stage: stage.name().to_owned(),
                        start: *start,
                        end: *end,
                    })
                    .collect(),
            })
            .collect();
        LatencyBreakdown {
            fetches_traced: self.fetches_traced,
            incomplete_fetches: self.incomplete,
            monotone_violations: self.monotone_violations,
            unknown_pairs: self.unknown_pairs,
            end_to_end_count: self.end_to_end.count(),
            end_to_end_total_cycles: self.end_to_end.sum(),
            stage_total_cycles: stage_total,
            queueing_cycles: class_totals[StageClass::Queueing as usize],
            service_cycles: class_totals[StageClass::Service as usize],
            network_cycles: class_totals[StageClass::Network as usize],
            end_to_end: self.end_to_end.clone(),
            stages,
            slowest,
            occupancy,
        }
    }

    /// The configured trace knobs.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }
}

/// Per-stage aggregate in the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageStat {
    /// Stage name (see [`Stage::name`]).
    pub stage: String,
    /// Queueing / service / network classification.
    pub class: String,
    /// Spans recorded.
    pub count: u64,
    /// Total cycles across all spans.
    pub total_cycles: u64,
    /// Mean span length.
    pub mean: f64,
    /// Shortest span.
    pub min: u64,
    /// Longest span.
    pub max: u64,
    /// Log2-bucketed span-length distribution.
    pub histogram: Log2Histogram,
}

/// One stage interval of a slow fetch, in absolute cycles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSpan {
    /// Stage name.
    pub stage: String,
    /// Span start (cycle).
    pub start: u64,
    /// Span end (cycle).
    pub end: u64,
}

/// One of the N slowest fetches of the run, with its full lifecycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowFetch {
    /// The fetch id.
    pub fetch_id: u64,
    /// Issuing core index.
    pub core: u64,
    /// Servicing partition index, or -1 if never assigned.
    pub partition: i64,
    /// Cache line addressed.
    pub line: u64,
    /// "load" or "store".
    pub kind: String,
    /// End-to-end latency in cycles.
    pub latency: u64,
    /// Telescoping stage spans.
    pub spans: Vec<StageSpan>,
}

/// One occupancy sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OccupancyPoint {
    /// Sampled cycle (a cadence multiple).
    pub cycle: u64,
    /// Queue depth at pre-step state of that cycle.
    pub depth: u64,
}

/// A named per-component queue-occupancy time series.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OccupancySeries {
    /// Component instance, e.g. `core3` or `partition1`.
    pub component: String,
    /// Which queue of the component, e.g. `l2_access`.
    pub queue: String,
    /// Sampling cadence in cycles.
    pub cadence: u64,
    /// The samples, in cycle order.
    pub samples: Vec<OccupancyPoint>,
}

/// The `latency_breakdown` section of `SimReport`. Present only when
/// tracing was enabled; the whole report stays bit-identical to an untraced
/// run otherwise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Completed fetches recorded.
    pub fetches_traced: u64,
    /// Fetches that completed without both endpoint stamps (always 0 on a
    /// healthy run).
    pub incomplete_fetches: u64,
    /// Adjacent stamp pairs that violated pipeline order (always 0).
    pub monotone_violations: u64,
    /// Adjacent stamp pairs matching no modeled path (always 0).
    pub unknown_pairs: u64,
    /// Samples in the end-to-end histogram.
    pub end_to_end_count: u64,
    /// Total end-to-end cycles across all traced fetches.
    pub end_to_end_total_cycles: u64,
    /// Total cycles across all load-path stage spans. Equals
    /// `end_to_end_total_cycles` exactly (the telescoping invariant).
    pub stage_total_cycles: u64,
    /// Load-path cycles spent in queueing stages.
    pub queueing_cycles: u64,
    /// Load-path cycles spent in service stages.
    pub service_cycles: u64,
    /// Load-path cycles spent traversing the interconnect.
    pub network_cycles: u64,
    /// End-to-end latency distribution.
    pub end_to_end: Log2Histogram,
    /// Per-stage aggregates, canonical order, zero-count stages omitted.
    pub stages: Vec<StageStat>,
    /// The N slowest fetches with full lifecycles.
    pub slowest: Vec<SlowFetch>,
    /// Per-component queue-occupancy time series.
    pub occupancy: Vec<OccupancySeries>,
}

impl LatencyBreakdown {
    /// True when every stage sum reconciles with the end-to-end total and
    /// no anomaly counter fired.
    pub fn reconciles(&self) -> bool {
        self.stage_total_cycles == self.end_to_end_total_cycles
            && self.monotone_violations == 0
            && self.unknown_pairs == 0
            && self.incomplete_fetches == 0
    }

    /// Fraction of load-path cycles attributed to queueing (the paper's
    /// congestion share), or 0.0 if nothing was traced.
    pub fn queueing_fraction(&self) -> f64 {
        if self.stage_total_cycles == 0 {
            0.0
        } else {
            self.queueing_cycles as f64 / self.stage_total_cycles as f64
        }
    }
}

/// One Chrome trace-event (`chrome://tracing` / Perfetto "X" complete
/// event). Cycle numbers are emitted as microsecond timestamps.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChromeEvent {
    /// Event name (the stage).
    pub name: String,
    /// Category.
    pub cat: String,
    /// Phase: always "X" (complete event with duration).
    pub ph: String,
    /// Start timestamp (cycle).
    pub ts: u64,
    /// Duration (cycles).
    pub dur: u64,
    /// Process id lane: the issuing core.
    pub pid: u64,
    /// Thread id lane: the fetch id.
    pub tid: u64,
    /// Extra fields displayed by the viewer.
    pub args: ChromeArgs,
}

/// The `args` payload of a [`ChromeEvent`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChromeArgs {
    /// Cache line addressed.
    pub line: u64,
    /// "load" or "store".
    pub kind: String,
    /// Servicing partition, or -1.
    pub partition: i64,
    /// The fetch's end-to-end latency.
    pub latency: u64,
}

/// Renders the slowest fetches as a Chrome trace-event array, loadable in
/// `chrome://tracing` or Perfetto.
pub fn chrome_trace_events(slowest: &[SlowFetch]) -> Vec<ChromeEvent> {
    let mut events = Vec::new();
    for fetch in slowest {
        for span in &fetch.spans {
            events.push(ChromeEvent {
                name: span.stage.clone(),
                cat: "fetch".to_owned(),
                ph: "X".to_owned(),
                ts: span.start,
                dur: span.end - span.start,
                pid: fetch.core,
                tid: fetch.fetch_id,
                args: ChromeArgs {
                    line: fetch.line,
                    kind: fetch.kind.clone(),
                    partition: fetch.partition,
                    latency: fetch.latency,
                },
            });
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumem_types::{CoreId, FetchId, LineAddr};

    fn timeline(stamps: &[(usize, u64)]) -> FetchTimeline {
        let mut t = FetchTimeline::default();
        for &(idx, at) in stamps {
            let slot = match idx {
                0 => &mut t.issued,
                1 => &mut t.l1_miss,
                2 => &mut t.icnt_inject,
                3 => &mut t.l2_arrive,
                4 => &mut t.l2_serve,
                5 => &mut t.dram_arrive,
                6 => &mut t.dram_issue,
                7 => &mut t.dram_data,
                8 => &mut t.resp_inject,
                9 => &mut t.returned,
                _ => unreachable!(),
            };
            *slot = Some(Cycle::new(at));
        }
        t
    }

    fn full_miss() -> FetchTimeline {
        timeline(&[
            (0, 10),
            (1, 12),
            (2, 20),
            (3, 25),
            (4, 40),
            (5, 45),
            (6, 90),
            (7, 110),
            (8, 115),
            (9, 130),
        ])
    }

    #[test]
    fn full_miss_telescopes() {
        let walk = stage_spans(&full_miss());
        assert_eq!(walk.monotone_violations, 0);
        assert_eq!(walk.unknown_pairs, 0);
        assert_eq!(walk.spans.len(), 9);
        let sum: u64 = walk.spans.iter().map(|(_, s, e)| e - s).sum();
        assert_eq!(sum, 120, "stage spans telescope to returned - issued");
        assert_eq!(walk.spans[0].0, Stage::IssueToL1);
        assert_eq!(walk.spans[5].0, Stage::DramQueue);
        assert_eq!(walk.spans[8].0, Stage::RespNoc);
    }

    #[test]
    fn l1_hit_l2_hit_and_fixed_paths() {
        let hit = stage_spans(&timeline(&[(0, 5), (9, 6)]));
        assert_eq!(hit.spans, vec![(Stage::L1Hit, 5, 6)]);

        let l2_hit = stage_spans(&timeline(&[
            (0, 1),
            (1, 2),
            (2, 4),
            (3, 8),
            (4, 16),
            (8, 20),
            (9, 32),
        ]));
        assert!(l2_hit.spans.contains(&(Stage::L2Service, 16, 20)));
        assert_eq!(l2_hit.unknown_pairs, 0);

        let fixed = stage_spans(&timeline(&[(0, 1), (1, 2), (2, 4), (9, 204)]));
        assert!(fixed.spans.contains(&(Stage::FixedMemory, 4, 204)));

        let merged = stage_spans(&timeline(&[(0, 1), (1, 2), (9, 300)]));
        assert!(merged.spans.contains(&(Stage::L1MergeWait, 2, 300)));
    }

    #[test]
    fn non_monotone_pair_is_counted_not_recorded() {
        let walk = stage_spans(&timeline(&[(0, 10), (1, 5), (9, 20)]));
        assert_eq!(walk.monotone_violations, 1);
    }

    #[test]
    fn collector_reconciles_and_ranks_slowest() {
        let mut c = TraceCollector::new(TraceConfig {
            slowest_per_core: 2,
            slowest_reported: 2,
            ..TraceConfig::default()
        });
        for (i, lat) in [100u64, 500, 300, 50].iter().enumerate() {
            let mut f = MemFetch::new(
                FetchId::new(i as u64),
                AccessKind::Load,
                LineAddr::new(i as u64),
                CoreId::new(0),
            );
            f.timeline = timeline(&[(0, 10), (9, 10 + lat)]);
            c.record_fetch(&f);
        }
        let b = c.breakdown(Vec::new());
        assert!(b.reconciles());
        assert_eq!(b.fetches_traced, 4);
        assert_eq!(b.end_to_end_total_cycles, 950);
        assert_eq!(b.stage_total_cycles, 950);
        assert_eq!(b.slowest.len(), 2);
        assert_eq!(b.slowest[0].latency, 500);
        assert_eq!(b.slowest[1].latency, 300);
    }

    #[test]
    fn collector_merge_matches_single_stream() {
        let cfg = TraceConfig::default();
        let mut all = TraceCollector::new(cfg);
        let mut a = TraceCollector::new(cfg);
        let mut b = TraceCollector::new(cfg);
        for i in 0..20u64 {
            let mut f = MemFetch::new(
                FetchId::new(i),
                AccessKind::Load,
                LineAddr::new(i),
                CoreId::new((i % 2) as u32),
            );
            f.timeline = timeline(&[(0, i), (1, i + 2), (2, i + 5), (9, i + 40 + i % 7)]);
            all.record_fetch(&f);
            if i % 2 == 0 {
                a.record_fetch(&f);
            } else {
                b.record_fetch(&f);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.breakdown(Vec::new()), ba.breakdown(Vec::new()));
        assert_eq!(ab.breakdown(Vec::new()), all.breakdown(Vec::new()));
    }

    #[test]
    fn probe_backfill_matches_stepping() {
        let cfg = TraceConfig {
            occupancy_cadence: 8,
            ..TraceConfig::default()
        };
        let mut stepped = OccupancyProbe::new(&cfg);
        for c in 0..60u64 {
            stepped.sample(Cycle::new(c), 3);
        }
        let mut skipped = OccupancyProbe::new(&cfg);
        for c in 0..13u64 {
            skipped.sample(Cycle::new(c), 3);
        }
        skipped.backfill(Cycle::new(13), 33, 3); // cycles 13..46 skipped
        for c in 46..60u64 {
            skipped.sample(Cycle::new(c), 3);
        }
        assert_eq!(stepped.points(), skipped.points());
    }

    #[test]
    fn probe_respects_cap() {
        let cfg = TraceConfig {
            occupancy_cadence: 1,
            max_occupancy_samples: 4,
            ..TraceConfig::default()
        };
        let mut p = OccupancyProbe::new(&cfg);
        for c in 0..10u64 {
            p.sample(Cycle::new(c), c);
        }
        assert_eq!(p.points().len(), 4);
        let mut q = OccupancyProbe::new(&cfg);
        q.backfill(Cycle::ZERO, 10, 7);
        assert_eq!(q.points().len(), 4);
    }

    #[test]
    fn chrome_export_shapes_events() {
        let slow = SlowFetch {
            fetch_id: 42,
            core: 1,
            partition: 0,
            line: 9,
            kind: "load".to_owned(),
            latency: 120,
            spans: vec![
                StageSpan {
                    stage: "issue_to_l1".to_owned(),
                    start: 10,
                    end: 12,
                },
                StageSpan {
                    stage: "resp_noc".to_owned(),
                    start: 115,
                    end: 130,
                },
            ],
        };
        let events = chrome_trace_events(&[slow]);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].ph, "X");
        assert_eq!(events[1].dur, 15);
        let json = serde_json::to_string(&events).unwrap();
        assert!(json.contains("\"name\":\"issue_to_l1\""));
    }
}
