//! End-to-end integration tests: full-system runs spanning every crate.

use std::sync::Arc;

use gpumem::prelude::*;
use gpumem_sim::MemoryMode;
use gpumem_workloads::{params_of, AccessPattern, SyntheticKernel};

/// A quick variant of a suite benchmark for integration testing.
fn quick(name: &str) -> Arc<SyntheticKernel> {
    let p = params_of(name).expect("known benchmark").scaled(0.15);
    Arc::new(SyntheticKernel::new(p))
}

fn small_gpu() -> GpuConfig {
    let mut cfg = GpuConfig::gtx480();
    cfg.num_cores = 4;
    cfg.num_partitions = 2;
    cfg
}

#[test]
fn every_suite_benchmark_completes_on_the_hierarchy() {
    let cfg = small_gpu();
    for name in BENCHMARK_NAMES {
        let program = quick(name) as Arc<dyn gpumem_sim::KernelProgram>;
        let report = run_benchmark(&cfg, &program, MemoryMode::Hierarchy)
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        assert!(report.ipc > 0.0, "{name}: zero IPC");
        assert!(report.instructions > 0, "{name}: no instructions");
        assert_eq!(report.benchmark, name);
    }
}

#[test]
fn every_suite_benchmark_completes_on_fixed_latency() {
    let cfg = small_gpu();
    for name in BENCHMARK_NAMES {
        let program = quick(name) as Arc<dyn gpumem_sim::KernelProgram>;
        for latency in [0, 200, 800] {
            let report = run_benchmark(&cfg, &program, MemoryMode::FixedLatency(latency))
                .unwrap_or_else(|e| panic!("{name}@{latency} failed: {e}"));
            assert!(report.instructions > 0);
        }
    }
}

#[test]
fn instruction_count_is_invariant_across_memory_systems() {
    // The same kernel must retire exactly the same instructions no matter
    // how the memory system behaves.
    let cfg = small_gpu();
    let program = quick("cfd") as Arc<dyn gpumem_sim::KernelProgram>;
    let a = run_benchmark(&cfg, &program, MemoryMode::Hierarchy).unwrap();
    let b = run_benchmark(&cfg, &program, MemoryMode::FixedLatency(100)).unwrap();
    let c = run_benchmark(&cfg, &program, MemoryMode::FixedLatency(700)).unwrap();
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(b.instructions, c.instructions);
}

#[test]
fn all_design_points_complete_and_never_lose_work() {
    let cfg = small_gpu();
    let program = quick("lbm") as Arc<dyn gpumem_sim::KernelProgram>;
    let baseline = run_benchmark(&cfg, &program, MemoryMode::Hierarchy).unwrap();
    for dp in DesignPoint::SECTION_IV {
        let scaled = dp.apply(&cfg);
        let report = run_benchmark(&scaled, &program, MemoryMode::Hierarchy)
            .unwrap_or_else(|e| panic!("{dp} failed: {e}"));
        assert_eq!(
            report.instructions, baseline.instructions,
            "{dp}: instruction count changed"
        );
    }
}

#[test]
fn barrier_kernel_with_full_system() {
    // nw is the barrier-heavy benchmark; it must synchronize correctly
    // through real memory-latency jitter.
    let cfg = small_gpu();
    let program = quick("nw") as Arc<dyn gpumem_sim::KernelProgram>;
    let report = run_benchmark(&cfg, &program, MemoryMode::Hierarchy).unwrap();
    assert!(report.core.barriers > 0, "nw must execute barriers");
}

#[test]
fn store_heavy_kernel_generates_dram_writes() {
    let cfg = small_gpu();
    let program = quick("lbm") as Arc<dyn gpumem_sim::KernelProgram>;
    let report = run_benchmark(&cfg, &program, MemoryMode::Hierarchy).unwrap();
    let dram = report.dram.expect("hierarchy mode");
    assert!(
        dram.stats.writes > 0,
        "write-through stores must reach DRAM"
    );
    assert!(report.l1.stats.stores > 0);
}

#[test]
fn l2_reuse_benchmark_hits_in_l2() {
    let cfg = small_gpu();
    let program = quick("sc") as Arc<dyn gpumem_sim::KernelProgram>;
    let report = run_benchmark(&cfg, &program, MemoryMode::Hierarchy).unwrap();
    let l2 = report.l2.expect("hierarchy mode");
    assert!(
        l2.stats.load_hits > 0,
        "sc's hot-region reuse must produce L2 hits"
    );
}

#[test]
fn custom_kernel_through_public_api() {
    // A user-authored workload, not from the suite.
    let mut p = gpumem_workloads::WorkloadParams::template("mine");
    p.ctas = 6;
    p.iters = 5;
    p.pattern = AccessPattern::Strided { stride: 7 };
    p.stores_per_iter = 1;
    let program = Arc::new(SyntheticKernel::new(p)) as Arc<dyn gpumem_sim::KernelProgram>;
    let report = run_benchmark(&small_gpu(), &program, MemoryMode::Hierarchy).unwrap();
    assert_eq!(report.benchmark, "mine");
    assert!(report.core.store_instrs > 0);
}

#[test]
fn watchdog_reports_progress() {
    let cfg = small_gpu();
    let program = quick("nn") as Arc<dyn gpumem_sim::KernelProgram>;
    let mut sim = gpumem_sim::GpuSimulator::new(cfg, program, MemoryMode::Hierarchy);
    let err = sim.run(10).expect_err("cannot finish in 10 cycles");
    match err {
        gpumem_sim::SimError::Watchdog { cycle, detail, .. } => {
            assert!(cycle >= 10);
            assert!(detail.contains("CTAs dispatched"));
        }
        other => panic!("expected a budget watchdog error, got {other}"),
    }
}
