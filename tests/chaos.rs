//! Robustness tests for the deterministic fault-injection harness and the
//! simulation watchdog.
//!
//! The contract under test: for *any* [`ChaosConfig`] schedule a run
//! either completes, returns a typed [`SimError`], or trips the watchdog
//! within its horizon — it never hangs and never panics. Chaos schedules
//! are seed-deterministic and engine-independent: the same seed produces
//! bit-identical outcomes from the serial and sharded-parallel engines at
//! every thread count, and a chaos-off run is bit-identical to a run with
//! no chaos attached at all.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use gpumem::prelude::*;
use gpumem_sim::{ChaosConfig, KernelProgram, SimError};
use gpumem_workloads::{params_of, SyntheticKernel, WorkloadParams};
use proptest::prelude::*;

/// Safety cap on simulated cycles: every workload here finishes far below
/// this, so hitting it means the machine stopped making progress.
const CYCLE_CAP: u64 = 2_000_000;

/// Watchdog horizon used by chaos runs: far beyond any transient fault
/// duration, far below the cycle cap.
const HORIZON: u64 = 5_000;

fn small_gpu() -> GpuConfig {
    let mut cfg = GpuConfig::gtx480();
    cfg.num_cores = 3;
    cfg.num_partitions = 2;
    cfg
}

/// A suite benchmark scaled down for integration testing.
fn suite_kernel(name: &str) -> Arc<dyn KernelProgram> {
    let p = params_of(name).unwrap().scaled(0.1);
    Arc::new(SyntheticKernel::new(p))
}

/// A tiny behaviourally varied workload for the property sweep.
fn tiny_kernel(seed: u64) -> Arc<dyn KernelProgram> {
    let mut p = WorkloadParams::template("chaos-prop");
    p.ctas = 4;
    p.warps_per_cta = 2;
    p.max_ctas_per_core = 2;
    p.iters = 3;
    p.loads_per_iter = 2;
    p.lines_per_load_max = 4;
    p.working_set_lines = 1_000;
    p.l1_reuse_fraction = 0.2;
    p.seed = seed;
    p.validate();
    Arc::new(SyntheticKernel::new(p))
}

/// Runs `f` on a helper thread and panics if it produces no result within
/// `secs` — the hard hang bound the chaos contract promises. (The helper
/// thread leaks on timeout, which is fine: the test is already failing.)
fn with_timeout<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("simulation hung: no outcome within the hard timeout")
}

fn chaos_sim(
    cfg: &GpuConfig,
    program: &Arc<dyn KernelProgram>,
    chaos: ChaosConfig,
) -> GpuSimulator {
    let mut sim = GpuSimulator::new(cfg.clone(), Arc::clone(program), MemoryMode::Hierarchy);
    sim.set_chaos(chaos);
    sim.set_watchdog(Some(HORIZON));
    sim
}

/// Canonical form of an outcome: completed reports as JSON minus the host
/// block, errors in debug form. Equal strings = bit-identical outcomes.
fn canonical(outcome: &Result<SimReport, SimError>) -> String {
    match outcome {
        Ok(report) => {
            let mut r = report.clone();
            r.host = None;
            serde_json::to_string(&r).unwrap()
        }
        Err(e) => format!("{e:?}"),
    }
}

proptest! {
    /// For any chaos schedule the run terminates with some outcome within
    /// a hard wall-clock bound, and the serial and parallel engines agree
    /// bit-for-bit on what that outcome is.
    #[test]
    fn any_chaos_schedule_terminates_identically_on_every_engine(
        seed in 0u64..u64::MAX,
        intervals in (0u64..150, 0u64..150, 0u64..200, 0u64..200),
        durations in (1u64..48, 1u64..48, 1u64..96),
        threads in 1usize..5,
        workload_seed in 0u64..u64::MAX,
    ) {
        let chaos = ChaosConfig {
            seed,
            port_delay_interval: intervals.0,
            port_delay_duration: durations.0,
            drop_reinject_interval: intervals.1,
            mshr_stall_interval: intervals.2,
            mshr_stall_duration: durations.1,
            dram_lockout_interval: intervals.3,
            dram_lockout_duration: durations.2,
            wedge_at: None,
            worker_panic_at: None,
        };
        let cfg = small_gpu();
        let program = tiny_kernel(workload_seed);
        let (serial, parallel) = with_timeout(120, move || {
            let serial = chaos_sim(&cfg, &program, chaos).run_stepped(CYCLE_CAP);
            let parallel = chaos_sim(&cfg, &program, chaos).run_parallel(CYCLE_CAP, threads);
            (canonical(&serial), canonical(&parallel))
        });
        prop_assert_eq!(
            serial, parallel,
            "chaos schedule diverged between engines"
        );
    }
}

#[test]
fn chaos_off_is_bit_identical_to_no_chaos() {
    // A disabled config must attach no engine at all: the run is
    // bit-identical to one that never heard of chaos, on every engine.
    let cfg = small_gpu();
    let program = suite_kernel("sc");
    let mut bare = GpuSimulator::new(cfg.clone(), Arc::clone(&program), MemoryMode::Hierarchy);
    let reference = canonical(&bare.run_stepped(CYCLE_CAP));

    let off = ChaosConfig::disabled(1234);
    assert!(!off.any_fault_enabled());
    let stepped = chaos_sim(&cfg, &program, off).run_stepped(CYCLE_CAP);
    assert_eq!(canonical(&stepped), reference);
    let skipping = chaos_sim(&cfg, &program, off).run(CYCLE_CAP);
    assert_eq!(canonical(&skipping), reference);
    for threads in [1, 2, 4] {
        let par = chaos_sim(&cfg, &program, off).run_parallel(CYCLE_CAP, threads);
        assert_eq!(canonical(&par), reference, "{threads} threads");
    }
}

#[test]
fn same_seed_same_outcome_across_processes_of_the_same_run() {
    // Two fresh simulators with the same chaos seed must reach the same
    // bit-identical outcome; a different seed must actually perturb
    // timing (same instructions, different cycle count).
    let cfg = small_gpu();
    let program = suite_kernel("cfd");
    let a = chaos_sim(&cfg, &program, ChaosConfig::standard(7)).run_stepped(CYCLE_CAP);
    let b = chaos_sim(&cfg, &program, ChaosConfig::standard(7)).run_stepped(CYCLE_CAP);
    assert_eq!(canonical(&a), canonical(&b));
    let c = chaos_sim(&cfg, &program, ChaosConfig::standard(8)).run_stepped(CYCLE_CAP);
    let (a, c) = (a.unwrap(), c.unwrap());
    assert_eq!(a.instructions, c.instructions, "chaos must never lose work");
    assert_ne!(a.cycles, c.cycles, "different seeds must perturb timing");
}

#[test]
fn wedge_is_diagnosed_within_horizon_by_every_engine() {
    // The seeded wedge fixture permanently freezes the response network;
    // every engine must report `SimError::Wedged` exactly one horizon
    // after progress stops, with a diagnosis naming the blocked chain.
    let cfg = small_gpu();
    let program = suite_kernel("cfd");
    let mut chaos = ChaosConfig::standard(5);
    chaos.wedge_at = Some(400);

    let (cfg2, program2) = (cfg.clone(), Arc::clone(&program));
    let err = with_timeout(120, move || {
        chaos_sim(&cfg2, &program2, chaos).run_stepped(CYCLE_CAP)
    })
    .expect_err("a wedged machine cannot complete");
    let diagnosis = match &err {
        SimError::Wedged { diagnosis } => diagnosis.clone(),
        other => panic!("expected a wedge diagnosis, got {other}"),
    };
    assert_eq!(diagnosis.horizon, HORIZON);
    assert_eq!(
        diagnosis.cycle - diagnosis.last_progress_cycle,
        HORIZON,
        "watchdog must fire exactly at its horizon under per-cycle stepping"
    );
    assert!(
        diagnosis
            .blocked_chain
            .iter()
            .any(|c| c.contains("resp_xbar")),
        "the chain must name the wedged response network: {:?}",
        diagnosis.blocked_chain
    );
    assert!(!diagnosis.components.is_empty());
    assert!(
        diagnosis.oldest_fetch.is_some(),
        "a wedge strands at least one in-flight fetch"
    );

    // The skipping and parallel engines must reach the very same error.
    let skipping = chaos_sim(&cfg, &program, chaos)
        .run(CYCLE_CAP)
        .expect_err("wedged");
    assert_eq!(skipping, err, "skipping engine diverged");
    for threads in [1, 2, 4] {
        let (cfg2, program2) = (cfg.clone(), Arc::clone(&program));
        let par = with_timeout(120, move || {
            chaos_sim(&cfg2, &program2, chaos).run_parallel(CYCLE_CAP, threads)
        })
        .expect_err("wedged");
        assert_eq!(par, err, "parallel engine at {threads} threads diverged");
    }
}

#[test]
fn injected_worker_panic_degrades_to_the_sequential_engine() {
    // The graceful-degradation fixture kills one worker mid-run; the
    // parallel engine must absorb it, resume sequentially, record the
    // downgrade, and still produce the exact reference report.
    let cfg = small_gpu();
    let program = suite_kernel("nw");
    let mut reference = GpuSimulator::new(cfg.clone(), Arc::clone(&program), MemoryMode::Hierarchy);
    let reference = reference.run_stepped(CYCLE_CAP).unwrap();
    assert!(reference.degraded.is_none());

    let mut chaos = ChaosConfig::disabled(11);
    chaos.worker_panic_at = Some(300);
    for threads in [2, 4] {
        let (cfg2, program2) = (cfg.clone(), Arc::clone(&program));
        let report = with_timeout(120, move || {
            chaos_sim(&cfg2, &program2, chaos).run_parallel(CYCLE_CAP, threads)
        })
        .unwrap_or_else(|e| panic!("degraded run must still complete: {e}"));
        let degraded = report
            .degraded
            .clone()
            .expect("the downgrade must be recorded in the report");
        assert!(degraded.at_cycle >= 300, "panic injected at cycle 300");
        assert!(
            degraded.reason.contains("sequential"),
            "reason must say where the run went: {}",
            degraded.reason
        );
        // Identical to the reference in every field except the host block
        // and the degradation record itself.
        let mut a = reference.clone();
        let mut b = report;
        a.host = None;
        a.degraded = None;
        b.host = None;
        b.degraded = None;
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "degraded run diverged from the reference at {threads} threads"
        );
    }

    // The serial engines ignore the fixture entirely.
    let serial = chaos_sim(&cfg, &program, chaos)
        .run_stepped(CYCLE_CAP)
        .unwrap();
    assert!(serial.degraded.is_none());
}

#[test]
fn zero_deadline_returns_a_typed_error() {
    let cfg = small_gpu();
    let program = suite_kernel("nn");
    let mut sim = GpuSimulator::new(cfg.clone(), Arc::clone(&program), MemoryMode::Hierarchy);
    sim.set_deadline_seconds(Some(0.0));
    match sim.run_stepped(CYCLE_CAP) {
        Err(SimError::DeadlineExceeded { budget_seconds, .. }) => {
            assert_eq!(budget_seconds, 0.0);
        }
        other => panic!("expected a deadline error, got {other:?}"),
    }
    // The parallel engine honours the same budget.
    let mut sim = GpuSimulator::new(cfg, program, MemoryMode::Hierarchy);
    sim.set_deadline_seconds(Some(0.0));
    match sim.run_parallel(CYCLE_CAP, 2) {
        Err(SimError::DeadlineExceeded { .. }) => {}
        other => panic!("expected a deadline error, got {other:?}"),
    }
}
