//! Tier-1: the simlint static-analysis pass must be clean on the tree.
//!
//! This wires `cargo run -p gpumem-lint -- check` into `cargo test -q`: any
//! nondeterminism hazard (unordered hash container, wall-clock read,
//! environment read, thread-identity dependence), `unsafe` token, missing
//! `#![forbid(unsafe_code)]`, unbalanced `take_ports`/`restore_ports`, or
//! drift between `crates/config` and the paper's Table I manifest fails the
//! build with `file:line` diagnostics — before any differential run could
//! notice the symptom. The flow-sensitive simcheck tier rides in the same
//! pass: shard-isolation for the epoch engine, fetch-slot leak freedom,
//! and queue/credit deadlock freedom across the whole workspace.

use std::path::Path;

use gpumem_lint::{check_workspace, LintOptions};

#[test]
fn workspace_is_simlint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let opts = LintOptions { deny_all: true };
    let outcome = check_workspace(root, &opts).expect("simlint pass runs");
    assert!(
        outcome.files_scanned >= 40,
        "suspiciously few files scanned ({}); did the tree move?",
        outcome.files_scanned
    );
    let denied: Vec<String> = outcome.denied(&opts).map(|d| d.to_string()).collect();
    assert!(
        denied.is_empty(),
        "simlint violations ({}):\n{}",
        denied.len(),
        denied.join("\n")
    );
}

#[test]
fn trace_crate_is_scanned_and_clean() {
    // The observability layer feeds numbers straight into golden snapshots,
    // so it must satisfy the same determinism discipline as the model
    // crates. Lint exactly its sources (rather than relying on the
    // workspace sweep's coverage) so a future restructuring that moved the
    // crate out of `crates/` would fail loudly here.
    let src_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/trace/src");
    let mut scanned = 0usize;
    for entry in std::fs::read_dir(&src_dir).expect("crates/trace/src exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        scanned += 1;
        let src = std::fs::read_to_string(&path).unwrap();
        let diags = gpumem_lint::lint_source(&path.display().to_string(), &src, false);
        assert!(
            diags.is_empty(),
            "trace crate has lint violations:\n{}",
            diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
    assert!(
        scanned >= 1,
        "no trace sources found under {}",
        src_dir.display()
    );
}

#[test]
fn seeded_violation_is_detected() {
    // Self-test: the pass must actually be able to fail. Lint a known-bad
    // snippet through the same engine the workspace check uses.
    let bad = "use std::collections::HashMap;\nfn f() { let _ = std::time::Instant::now(); }\n";
    let diags = gpumem_lint::lint_source("seeded.rs", bad, false);
    assert!(diags.iter().any(|d| d.rule == "no-hash-collections"));
    assert!(diags.iter().any(|d| d.rule == "no-wall-clock"));
}

#[test]
fn sweep_crate_fs_discipline_is_enforced() {
    // The sweep crate's crash-safety argument rests on every disk mutation
    // going through its journal module. Prove the rule actually fires:
    // lint the seeded fixture (sweep-named code doing raw std::fs writes
    // and reading SystemTime) through the same engine the workspace check
    // uses.
    let fixture =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/lint/tests/fixtures/sweep_raw_fs.rs");
    let src = std::fs::read_to_string(&fixture).expect("fixture exists");
    let diags = gpumem_lint::lint_source("crates/sweep/src/raw_fs.rs", &src, false);
    for rule in ["fs-outside-journal", "no-wall-clock"] {
        assert!(
            diags.iter().any(|d| d.rule == rule),
            "{rule} did not fire on the seeded sweep fixture:\n{}",
            diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
    // The same source under the journal module's own path is allowed to
    // touch the filesystem (that is the point of the module)...
    let journal = gpumem_lint::lint_source("crates/sweep/src/journal.rs", &src, false);
    assert!(
        !journal.iter().any(|d| d.rule == "fs-outside-journal"),
        "journal.rs must be exempt from fs-outside-journal"
    );
    // ...and sweep test code is exempt like all test code.
    let test_code = gpumem_lint::lint_source("crates/sweep/tests/disk.rs", &src, true);
    assert!(!test_code.iter().any(|d| d.rule == "fs-outside-journal"));
}

#[test]
fn seeded_simcheck_violations_are_detected() {
    // Self-test for the flow-sensitive tier: each analysis must fire on its
    // seeded fixture when run through the same multi-file engine the
    // workspace check uses.
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/lint/tests/fixtures");
    let mut inputs = Vec::new();
    for name in [
        "parallel_cross_shard.rs",
        "arena_slot_leak.rs",
        "credit_cycle.rs",
    ] {
        inputs.push(gpumem_lint::FileInput {
            label: name.to_owned(),
            source: std::fs::read_to_string(fixtures.join(name)).expect("fixture exists"),
            is_test: false,
        });
    }
    let diags = gpumem_lint::lint_files(&inputs);
    for rule in ["shard-isolation", "fetch-slot-leak", "queue-deadlock"] {
        assert!(
            diags.iter().any(|d| d.rule == rule),
            "{rule} did not fire on its seeded fixture:\n{}",
            diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
