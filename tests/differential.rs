//! Both alternative execution engines must be observationally invisible:
//! for every benchmark and memory mode, [`GpuSimulator::run`] (which
//! fast-forwards across provably inert cycles) and
//! [`GpuSimulator::run_parallel`] (which shards each cycle across worker
//! threads) must produce a [`SimReport`] that is bit-identical to
//! [`GpuSimulator::run_stepped`] (the per-cycle serial reference
//! semantics) in every field except the host-side wall-clock block.
//!
//! The thread counts exercised default to {1, 2, 4, 8} and can be
//! overridden via `GPUMEM_DIFF_THREADS` (comma-separated), which is how
//! the CI matrix pins specific counts. The epoch axis defaults to
//! {1, 2, hop_latency, auto} and can be pinned the same way via
//! `GPUMEM_DIFF_EPOCH`, so the full threads × epoch grid is covered
//! across matrix legs.

use std::sync::Arc;

use gpumem::prelude::*;
use gpumem::DEFAULT_MAX_CYCLES;
use gpumem_sim::{EpochPolicy, KernelProgram, SimError};
use gpumem_workloads::{params_of, SyntheticKernel, BENCHMARK_NAMES};

fn small_gpu() -> GpuConfig {
    let mut cfg = GpuConfig::gtx480();
    cfg.num_cores = 3;
    cfg.num_partitions = 2;
    cfg
}

fn kernel(name: &str) -> Arc<dyn KernelProgram> {
    let p = params_of(name).unwrap().scaled(0.1);
    Arc::new(SyntheticKernel::new(p))
}

/// Thread counts the parallel comparisons run at.
fn diff_threads() -> Vec<usize> {
    match std::env::var("GPUMEM_DIFF_THREADS") {
        Ok(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad GPUMEM_DIFF_THREADS entry {t:?}"))
            })
            .collect(),
        Err(_) => vec![1, 2, 4, 8],
    }
}

/// Epoch policies the parallel comparisons run at, keyed by the
/// `GPUMEM_DIFF_EPOCH` spelling used in the CI matrix: `1` and `2` are
/// fixed epoch lengths, `hop_latency` is the configured cross-shard
/// latency, `auto` lets the engine derive the length each round.
fn diff_epochs(cfg: &GpuConfig) -> Vec<(String, EpochPolicy)> {
    let parse = |s: &str| match s {
        "1" => EpochPolicy::Fixed(1),
        "2" => EpochPolicy::Fixed(2),
        "hop_latency" => EpochPolicy::Fixed(cfg.noc.hop_latency),
        "auto" => EpochPolicy::Auto,
        other => panic!("bad GPUMEM_DIFF_EPOCH entry {other:?}"),
    };
    let spellings: Vec<String> = match std::env::var("GPUMEM_DIFF_EPOCH") {
        Ok(s) => s.split(',').map(|t| t.trim().to_owned()).collect(),
        Err(_) => ["1", "2", "hop_latency", "auto"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
    };
    spellings
        .into_iter()
        .map(|s| {
            let policy = parse(&s);
            (s, policy)
        })
        .collect()
}

/// Serializes a report with the host block removed (it legitimately
/// differs between engines and runs).
fn canonical(mut report: SimReport) -> String {
    report.host = None;
    serde_json::to_string(&report).unwrap()
}

/// Runs one benchmark through every engine and asserts the reports
/// serialize to the exact same JSON once the host block is removed. One
/// stepped reference run serves all comparisons.
fn assert_differential(cfg: &GpuConfig, name: &str, mode: MemoryMode) {
    let program = kernel(name);
    let mut stepped = GpuSimulator::new(cfg.clone(), Arc::clone(&program), mode);
    let reference = canonical(stepped.run_stepped(DEFAULT_MAX_CYCLES).unwrap());
    assert_eq!(
        stepped.skipped_cycles(),
        0,
        "{name}/{mode}: reference run must never skip"
    );

    let mut skipping = GpuSimulator::new(cfg.clone(), Arc::clone(&program), mode);
    let skipped = canonical(skipping.run(DEFAULT_MAX_CYCLES).unwrap());
    assert_eq!(
        skipped, reference,
        "{name}/{mode}: skipping run diverged from per-cycle reference"
    );

    for threads in diff_threads() {
        for (spelling, policy) in diff_epochs(cfg) {
            let mut par = GpuSimulator::new(cfg.clone(), Arc::clone(&program), mode);
            let report = par
                .run_parallel_with(DEFAULT_MAX_CYCLES, threads, policy)
                .unwrap();
            assert_eq!(
                report.host.as_ref().map(|h| h.threads),
                Some(threads.max(1) as u64),
                "{name}/{mode}: host block must record the thread count"
            );
            assert!(
                report
                    .host
                    .as_ref()
                    .is_some_and(|h| h.epoch_rounds.is_some()),
                "{name}/{mode}: host block must record epoch accounting"
            );
            assert_eq!(
                canonical(report),
                reference,
                "{name}/{mode}: parallel run at {threads} threads, \
                 epoch {spelling} diverged from per-cycle reference"
            );
        }
    }
}

#[test]
fn hierarchy_reports_are_bit_identical() {
    let cfg = small_gpu();
    for name in BENCHMARK_NAMES {
        assert_differential(&cfg, name, MemoryMode::Hierarchy);
    }
}

#[test]
fn fixed_latency_reports_are_bit_identical() {
    let cfg = small_gpu();
    for name in BENCHMARK_NAMES {
        assert_differential(&cfg, name, MemoryMode::FixedLatency(800));
    }
}

#[test]
fn fixed_latency_runs_actually_skip() {
    // At an 800-cycle miss latency the machine spends most of its life
    // waiting; the horizon jump must engage, not silently degrade to
    // per-cycle stepping.
    let cfg = small_gpu();
    let mut sim = GpuSimulator::new(cfg, kernel("nw"), MemoryMode::FixedLatency(800));
    let report = sim.run(DEFAULT_MAX_CYCLES).unwrap();
    let host = report.host.expect("run() fills host perf");
    assert!(
        host.skipped_cycles > 0,
        "no cycles skipped on a latency-dominated run"
    );
    assert_eq!(host.stepped_cycles + host.skipped_cycles, report.cycles);
    assert!(host.skipped_fraction > 0.0 && host.skipped_fraction < 1.0);
}

#[test]
fn watchdog_fires_identically_under_skipping() {
    // The horizon is clamped to the watchdog budget, so an aborted run
    // must report the same cycle, instruction count and liveness detail
    // either way.
    let cfg = small_gpu();
    let budget = 2_000;
    for mode in [MemoryMode::Hierarchy, MemoryMode::FixedLatency(800)] {
        let program = kernel("cfd");
        let a = GpuSimulator::new(cfg.clone(), Arc::clone(&program), mode).run(budget);
        let b = GpuSimulator::new(cfg.clone(), Arc::clone(&program), mode).run_stepped(budget);
        let a = a.expect_err("budget too small to finish");
        let b = b.expect_err("budget too small to finish");
        assert_eq!(a, b, "{mode}: watchdog divergence");
        match a {
            SimError::Watchdog { cycle, .. } => assert_eq!(cycle, budget),
            other => panic!("expected a budget watchdog error, got {other}"),
        }
        // The parallel engine restores the machine before diagnosing, so
        // its watchdog error must be identical too.
        let c = GpuSimulator::new(cfg.clone(), program, mode).run_parallel(budget, 4);
        let c = c.expect_err("budget too small to finish");
        assert_eq!(c, b, "{mode}: parallel watchdog divergence");
    }
}
