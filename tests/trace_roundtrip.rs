//! Trace round-trip differential: every synthetic workload — the paper's
//! eight benchmarks plus the three ML kernels — encoded to the
//! `gpumem-trace v1` text format, decoded back, and simulated must be
//! bit-identical (full `SimReport`, host block stripped) to simulating
//! the synthetic program directly, in both memory modes and on every
//! engine: the per-cycle stepped oracle, the event-driven engine, and
//! sharded parallel stepping at 1, 2, 4 and 8 threads.
//!
//! This is the trace frontend's core guarantee: a trace is a *complete*
//! description of a workload, so replay admits no drift from the program
//! it was recorded from, no matter which engine consumes it.

use std::sync::Arc;

use gpumem::prelude::*;
use gpumem::DEFAULT_MAX_CYCLES;
use gpumem_sim::{GpuSimulator, KernelProgram, SimReport};
use gpumem_tracefmt::{encode_program, parse_str};
use gpumem_workloads::{extended_names, params_of, SyntheticKernel};

/// Small machine so the full grid (11 workloads × 2 modes × 7 runs × 2
/// frontends) stays fast; shape mirrors the golden harness.
fn small_gpu() -> GpuConfig {
    let mut cfg = GpuConfig::gtx480();
    cfg.num_cores = 3;
    cfg.num_partitions = 2;
    cfg
}

const SCALE: f64 = 0.05;
const THREADS: &[usize] = &[1, 2, 4, 8];

/// Full-report canonical form: only the host block (wall-clock
/// throughput) may differ between engines and frontends.
fn canonical(report: &SimReport) -> String {
    let mut r = report.clone();
    r.host = None;
    serde_json::to_string(&r).expect("report serializes")
}

fn run_engine(
    cfg: &GpuConfig,
    program: &Arc<dyn KernelProgram>,
    mode: MemoryMode,
    engine: &str,
) -> SimReport {
    let mut sim = GpuSimulator::new(cfg.clone(), Arc::clone(program), mode);
    match engine {
        "stepped" => sim.run_stepped(DEFAULT_MAX_CYCLES),
        "event" => sim.run(DEFAULT_MAX_CYCLES),
        threads => sim.run_parallel_with(
            DEFAULT_MAX_CYCLES,
            threads.parse().expect("thread count"),
            EpochPolicy::Auto,
        ),
    }
    .unwrap_or_else(|e| panic!("{} / {mode} / {engine}: {e}", program.name()))
}

fn check_mode(mode: MemoryMode) {
    let cfg = small_gpu();
    for name in extended_names() {
        let params = params_of(name).expect("canonical name").scaled(SCALE);
        let direct: Arc<dyn KernelProgram> = Arc::new(SyntheticKernel::new(params));
        let text = encode_program(direct.as_ref(), cfg.line_bytes)
            .unwrap_or_else(|e| panic!("{name}: encode failed: {e}"));
        let traced: Arc<dyn KernelProgram> = Arc::new(
            parse_str(&text).unwrap_or_else(|e| panic!("{name}: emitted trace rejected: {e}")),
        );

        let reference = canonical(&run_engine(&cfg, &direct, mode, "stepped"));
        let mut engines: Vec<String> = vec!["stepped".into(), "event".into()];
        engines.extend(THREADS.iter().map(|n| n.to_string()));
        for engine in &engines {
            for (frontend, program) in [("synthetic", &direct), ("traced", &traced)] {
                let got = canonical(&run_engine(&cfg, program, mode, engine));
                assert_eq!(
                    got, reference,
                    "{name} / {mode} / {frontend} frontend / {engine} engine \
                     diverged from the direct stepped oracle"
                );
            }
        }
    }
}

#[test]
fn roundtrip_is_bit_identical_in_hierarchy_mode() {
    check_mode(MemoryMode::Hierarchy);
}

#[test]
fn roundtrip_is_bit_identical_in_fixed_latency_mode() {
    check_mode(MemoryMode::FixedLatency(800));
}
