//! Property tests for the event-horizon protocol: arbitrary interleavings
//! of [`GpuSimulator::step`] and [`GpuSimulator::fast_forward_to`] must end
//! in exactly the same [`SimReport`] as pure per-cycle stepping, and
//! [`GpuSimulator::next_event`] must never name a cycle in the past.

use std::sync::Arc;

use gpumem::prelude::*;
use gpumem_sim::{EpochPolicy, KernelProgram};
use gpumem_workloads::{AccessPattern, SyntheticKernel, WorkloadParams};
use proptest::prelude::*;

/// Safety cap: every generated workload finishes far below this.
const CYCLE_CAP: u64 = 5_000_000;

fn tiny_gpu() -> GpuConfig {
    let mut cfg = GpuConfig::tiny();
    cfg.num_cores = 2;
    cfg
}

/// Builds a small but behaviourally varied workload from raw knobs.
#[allow(clippy::too_many_arguments)]
fn workload(
    ctas: u32,
    warps_per_cta: u32,
    iters: u32,
    loads_per_iter: u32,
    lines_per_load_max: u32,
    pattern_idx: u8,
    l1_reuse: f64,
    barrier: bool,
    seed: u64,
) -> WorkloadParams {
    let mut p = WorkloadParams::template("prop");
    p.ctas = ctas;
    p.warps_per_cta = warps_per_cta;
    p.max_ctas_per_core = 2;
    p.iters = iters;
    p.loads_per_iter = loads_per_iter;
    p.lines_per_load_max = lines_per_load_max;
    p.pattern = match pattern_idx % 4 {
        0 => AccessPattern::Streaming,
        1 => AccessPattern::Strided { stride: 7 },
        2 => AccessPattern::Gather,
        _ => AccessPattern::Stencil { plane: 64 },
    };
    p.working_set_lines = 2_000;
    p.l1_reuse_fraction = l1_reuse;
    p.barrier_every = if barrier { Some(2) } else { None };
    p.seed = seed;
    p.validate();
    p
}

/// A tiny deterministic xorshift for interleaving decisions (the vendored
/// test rig has no re-entrant RNG handle inside the body).
struct Coin(u64);

impl Coin {
    fn flip(&mut self) -> bool {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0 & 1 == 1
    }
}

/// Runs `program` by pure stepping, and again with `fast_forward_to`
/// jumps injected at coin-flip points, checking the horizon contract at
/// every cycle; final reports must serialize identically.
fn assert_interleaving_invisible(p: &WorkloadParams, mode: MemoryMode, coin_seed: u64) {
    // (prop_assert! in the vendored rig is a plain assert, so this helper
    // can stay a unit function.)
    let cfg = tiny_gpu();
    let program: Arc<dyn KernelProgram> = Arc::new(SyntheticKernel::new(p.clone()));

    let mut reference = GpuSimulator::new(cfg.clone(), Arc::clone(&program), mode);
    while !reference.is_done() {
        reference.step().expect("reference step never faults");
        assert!(reference.now().raw() < CYCLE_CAP, "reference run wedged");
    }

    let mut coin = Coin(coin_seed | 1);
    let mut sim = GpuSimulator::new(cfg, program, mode);
    while !sim.is_done() {
        sim.step().expect("step never faults");
        let now = sim.now();
        if let Some(ev) = sim.next_event() {
            prop_assert!(
                ev >= now,
                "next_event returned a cycle in the past: {ev:?} < {now:?}"
            );
            // Jump only sometimes, so windows are entered and left at
            // arbitrary phases rather than always at the horizon.
            if ev > now && coin.flip() {
                sim.fast_forward_to(ev);
            }
        }
        prop_assert!(sim.now().raw() < CYCLE_CAP, "interleaved run wedged");
    }

    let ja = serde_json::to_string(&reference.report()).unwrap();
    let jb = serde_json::to_string(&sim.report()).unwrap();
    prop_assert_eq!(ja, jb, "interleaved run diverged from stepped reference");
}

/// Runs `program` serially stepped and sharded over `threads` workers;
/// final reports must serialize identically (host block excluded).
fn assert_parallel_invisible(p: &WorkloadParams, mode: MemoryMode, threads: usize) {
    let cfg = tiny_gpu();
    let program: Arc<dyn KernelProgram> = Arc::new(SyntheticKernel::new(p.clone()));

    let mut reference = GpuSimulator::new(cfg.clone(), Arc::clone(&program), mode);
    let mut a = reference
        .run_stepped(CYCLE_CAP)
        .expect("reference run finishes");
    let mut sim = GpuSimulator::new(cfg, program, mode);
    let mut b = sim
        .run_parallel(CYCLE_CAP, threads)
        .expect("parallel run finishes");
    a.host = None;
    b.host = None;
    let ja = serde_json::to_string(&a).unwrap();
    let jb = serde_json::to_string(&b).unwrap();
    prop_assert_eq!(ja, jb, "parallel run diverged from stepped reference");
}

proptest! {
    #[test]
    fn parallel_stepping_matches_serial_hierarchy(
        knobs in (1u32..4, 1u32..3, 1u32..6, 0u32..3, 1u32..9, 0u8..4),
        l1_reuse in 0.0f64..0.5,
        barrier in proptest::arbitrary::any::<bool>(),
        threads in 1usize..6,
        seed in 0u64..u64::MAX,
    ) {
        let (ctas, warps, iters, loads, lines, pat) = knobs;
        let p = workload(ctas, warps, iters, loads, lines, pat, l1_reuse, barrier, seed);
        assert_parallel_invisible(&p, MemoryMode::Hierarchy, threads);
    }

    /// Epoch-mailbox delivery order must be a function of the machine
    /// alone, never of worker scheduling: the same workload sharded over
    /// different worker counts (and so different shard→worker maps and
    /// free-run interleavings) must produce byte-identical reports at the
    /// same epoch policy, because mailboxes are drained in total
    /// shard-id-then-cycle merge order at every barrier.
    #[test]
    fn epoch_mailbox_order_is_independent_of_worker_scheduling(
        knobs in (1u32..4, 1u32..3, 1u32..6, 0u32..3, 1u32..9, 0u8..4),
        l1_reuse in 0.0f64..0.5,
        epoch in prop_oneof![
            (2u64..10).prop_map(EpochPolicy::Fixed),
            Just(EpochPolicy::Auto),
        ],
        seed in 0u64..u64::MAX,
    ) {
        let (ctas, warps, iters, loads, lines, pat) = knobs;
        let p = workload(ctas, warps, iters, loads, lines, pat, l1_reuse, false, seed);
        let cfg = tiny_gpu();
        let program: Arc<dyn KernelProgram> = Arc::new(SyntheticKernel::new(p));
        let mut baseline: Option<String> = None;
        for threads in [1usize, 2, 3, 5] {
            let mut sim = GpuSimulator::new(cfg.clone(), Arc::clone(&program), MemoryMode::Hierarchy);
            let mut report = sim
                .run_parallel_with(CYCLE_CAP, threads, epoch)
                .expect("parallel run finishes");
            report.host = None;
            let json = serde_json::to_string(&report).unwrap();
            match &baseline {
                None => baseline = Some(json),
                Some(want) => prop_assert_eq!(
                    &json, want,
                    "worker count {} reordered epoch-mailbox delivery under {:?}",
                    threads, epoch
                ),
            }
        }
    }

    #[test]
    fn parallel_stepping_matches_serial_fixed(
        knobs in (1u32..4, 1u32..3, 1u32..6, 0u32..3, 1u32..9, 0u8..4),
        latency in 0u64..1_000,
        threads in 1usize..6,
        seed in 0u64..u64::MAX,
    ) {
        let (ctas, warps, iters, loads, lines, pat) = knobs;
        let p = workload(ctas, warps, iters, loads, lines, pat, 0.2, false, seed);
        assert_parallel_invisible(&p, MemoryMode::FixedLatency(latency), threads);
    }
}

proptest! {
    #[test]
    fn interleaved_fast_forward_matches_stepping_hierarchy(
        knobs in (1u32..4, 1u32..3, 1u32..6, 0u32..3, 1u32..9, 0u8..4),
        l1_reuse in 0.0f64..0.5,
        barrier in proptest::arbitrary::any::<bool>(),
        seeds in (0u64..u64::MAX, 0u64..u64::MAX),
    ) {
        let (ctas, warps, iters, loads, lines, pat) = knobs;
        let p = workload(ctas, warps, iters, loads, lines, pat, l1_reuse, barrier, seeds.0);
        assert_interleaving_invisible(&p, MemoryMode::Hierarchy, seeds.1);
    }

    #[test]
    fn interleaved_fast_forward_matches_stepping_fixed(
        knobs in (1u32..4, 1u32..3, 1u32..6, 0u32..3, 1u32..9, 0u8..4),
        latency in 0u64..1_000,
        seeds in (0u64..u64::MAX, 0u64..u64::MAX),
    ) {
        let (ctas, warps, iters, loads, lines, pat) = knobs;
        let p = workload(ctas, warps, iters, loads, lines, pat, 0.2, false, seeds.0);
        assert_interleaving_invisible(&p, MemoryMode::FixedLatency(latency), seeds.1);
    }
}

#[test]
fn next_event_is_never_in_the_past() {
    // Deterministic sweep of one latency-heavy run: at every cycle the
    // horizon must sit at or after `now`, and when it sits strictly after,
    // jumping there must leave the machine able to act (the horizon is an
    // event, not a guess).
    let cfg = tiny_gpu();
    let p = workload(3, 2, 4, 2, 8, 2, 0.3, true, 0xFEED);
    let program: Arc<dyn KernelProgram> = Arc::new(SyntheticKernel::new(p));
    let mut sim = GpuSimulator::new(cfg, program, MemoryMode::FixedLatency(400));
    let mut horizons_in_future = 0u32;
    while !sim.is_done() {
        sim.step().expect("step never faults");
        let now = sim.now();
        match sim.next_event() {
            Some(ev) => {
                assert!(ev >= now, "horizon {ev:?} behind clock {now:?}");
                if ev > now {
                    horizons_in_future += 1;
                    sim.fast_forward_to(ev);
                    assert_eq!(
                        sim.next_event(),
                        Some(ev),
                        "after jumping to the horizon something must be actionable"
                    );
                }
            }
            None => assert!(sim.is_done(), "quiescent horizon with work outstanding"),
        }
        assert!(sim.now().raw() < CYCLE_CAP, "run wedged");
    }
    assert!(
        horizons_in_future > 0,
        "a 400-cycle miss latency must open at least one skip window"
    );
}
