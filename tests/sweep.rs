//! Tier-1: crash-safe sweep orchestration.
//!
//! The contract under test: killing a sweep at *any* journal byte offset
//! (including mid-record, leaving a torn line), truncating the journal at
//! any byte, or flipping any byte of a committed cell file must never
//! make a resumed sweep serve a corrupt result or end on a different
//! store digest than an uninterrupted run. Cells whose files survived the
//! kill are served as cache hits — proven with the recompute counters,
//! not just the digests.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use gpumem::RetryPolicy;
use gpumem_sweep::{run_sweep, CellStatus, ResultStore, SweepOptions, SweepSpec};
use proptest::prelude::*;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gpumem-sweep-test-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A 4-cell grid small enough that a full crash matrix stays cheap
/// (each cell simulates a few thousand cycles).
fn tiny_spec() -> SweepSpec {
    SweepSpec {
        name: "crash-matrix".into(),
        scale: 0.02,
        workloads: vec!["nn".into(), "sc".into()],
        design_points: vec!["baseline".into(), "L2".into()],
        seeds: vec![0],
        modes: vec!["hierarchy".into()],
        engines: vec!["event".into()],
        max_cycles: 50_000_000,
        deadline_seconds: None,
    }
}

/// Single worker keeps commit order — and therefore the journal byte
/// layout — deterministic, so crash offsets derived from a reference
/// journal line up exactly on the runs under test.
fn opts() -> SweepOptions {
    SweepOptions {
        workers: 1,
        retry: RetryPolicy::immediate(2),
        progress: false,
        crash_after_journal_bytes: None,
    }
}

fn crash_opts(boundary: u64) -> SweepOptions {
    SweepOptions {
        crash_after_journal_bytes: Some(boundary),
        ..opts()
    }
}

/// Per-cell result digests in expansion order (None for uncommitted).
fn cell_digests(spec: &SweepSpec, dir: &Path) -> Vec<Option<String>> {
    let store = ResultStore::open(dir).unwrap();
    spec.expand()
        .unwrap()
        .iter()
        .map(|c| store.peek(c.key).ok().flatten().map(|e| e.result_digest))
        .collect()
}

#[test]
fn fresh_run_then_resume_is_all_cache_hits_and_bit_identical() {
    let spec = tiny_spec();
    let dir = scratch("fresh");
    let first = run_sweep(&spec, &dir, &opts()).unwrap();
    assert_eq!(first.cells, 4);
    assert_eq!(first.computed, 4);
    assert_eq!(first.cache_hits, 0);
    assert_eq!(first.failed, 0);

    // A re-run over the complete store must perform zero simulations.
    let second = run_sweep(&spec, &dir, &opts()).unwrap();
    assert_eq!(second.cache_hits, 4);
    assert_eq!(second.simulations_run(), 0);
    assert_eq!(second.attempts_total, 0);
    assert_eq!(second.store_digest, first.store_digest);
    for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
        assert_eq!(a.result_digest, b.result_digest);
        assert_eq!(b.status, CellStatus::CacheHit);
    }

    // And an independent from-scratch run lands on the same digest.
    let other = scratch("fresh-other");
    let third = run_sweep(&spec, &other, &opts()).unwrap();
    assert_eq!(third.store_digest, first.store_digest);
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&other);
}

#[test]
fn crash_at_adversarial_journal_offsets_resumes_bit_identical() {
    let spec = tiny_spec();
    let reference_dir = scratch("crash-ref");
    let reference = run_sweep(&spec, &reference_dir, &opts()).unwrap();
    let journal = fs::read(reference_dir.join("journal.log")).unwrap();
    let len = journal.len() as u64;

    // Adversarial offsets: the very start, every record boundary and its
    // two neighbours (one byte short tears the previous record's newline,
    // one byte past tears the next record's checksum), each record's
    // midpoint, and the last byte of the journal.
    let mut boundaries = vec![0, 1, len - 1];
    let mut line_start = 0u64;
    for (i, b) in journal.iter().enumerate() {
        if *b == b'\n' {
            let end = i as u64 + 1;
            boundaries.extend([
                end.saturating_sub(1),
                end,
                (end + 1).min(len),
                line_start + (end - line_start) / 2,
            ]);
            line_start = end;
        }
    }
    boundaries.sort_unstable();
    boundaries.dedup();
    boundaries.retain(|&b| b < len);

    for boundary in boundaries {
        let dir = scratch(&format!("crash-{boundary}"));
        let err = run_sweep(&spec, &dir, &crash_opts(boundary)).unwrap_err();
        assert!(
            err.to_string().contains("injected crash"),
            "boundary {boundary}: expected an injected crash, got: {err}"
        );
        assert_eq!(
            fs::metadata(dir.join("journal.log"))
                .map(|m| m.len())
                .unwrap_or(0),
            boundary,
            "the journal must be torn at exactly the armed boundary"
        );

        // Cells whose files became durable before the kill must be served
        // as cache hits on resume — count them first, read-only.
        let durable = cell_digests(&spec, &dir)
            .iter()
            .filter(|d| d.is_some())
            .count();

        let resumed = run_sweep(&spec, &dir, &opts()).unwrap();
        assert_eq!(
            resumed.cache_hits, durable,
            "boundary {boundary}: every durable cell must be a cache hit"
        );
        assert_eq!(
            resumed.simulations_run(),
            4 - durable,
            "boundary {boundary}: only lost cells may be simulated"
        );
        assert_eq!(resumed.failed, 0);
        assert_eq!(
            resumed.store_digest, reference.store_digest,
            "boundary {boundary}: resume must finish bit-identical"
        );
        for (r, o) in reference.outcomes.iter().zip(&resumed.outcomes) {
            assert_eq!(r.result_digest, o.result_digest, "boundary {boundary}");
        }
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&reference_dir);
}

#[test]
fn journal_truncated_at_every_byte_still_serves_the_whole_store() {
    let spec = tiny_spec();
    let dir = scratch("trunc");
    let reference = run_sweep(&spec, &dir, &opts()).unwrap();
    let journal_path = dir.join("journal.log");
    let full = fs::read(&journal_path).unwrap();

    for cut in 0..=full.len() {
        fs::write(&journal_path, &full[..cut]).unwrap();
        // The store digest is a function of the cell files, which are
        // intact: any journal truncation must be invisible to readers.
        let keys: Vec<_> = spec.expand().unwrap().iter().map(|c| c.key).collect();
        let digest = ResultStore::open(&dir)
            .unwrap()
            .store_digest(&keys)
            .unwrap();
        assert_eq!(digest, reference.store_digest, "cut at byte {cut}");

        // Sampled cuts get a full resume: all four cells must come back
        // as cache hits with zero simulations.
        if cut % 13 == 0 || cut + 1 == full.len() {
            let resumed = run_sweep(&spec, &dir, &opts()).unwrap();
            assert_eq!(resumed.cache_hits, 4, "cut at byte {cut}");
            assert_eq!(resumed.simulations_run(), 0, "cut at byte {cut}");
            assert_eq!(resumed.store_digest, reference.store_digest);
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cell_files_are_never_served_and_resume_recomputes_them() {
    let spec = tiny_spec();
    let dir = scratch("corrupt");
    let reference = run_sweep(&spec, &dir, &opts()).unwrap();
    let cells = spec.expand().unwrap();

    for (i, cell) in cells.iter().enumerate() {
        let path = dir.join("cells").join(format!("{}.json", cell.key));
        let original = fs::read(&path).unwrap();

        // Detection sweep: flipping any sampled byte must make the store
        // refuse to serve the cell (the checksum header covers every body
        // byte, and a header flip breaks the header itself).
        let mut offsets: Vec<usize> = (0..original.len()).step_by(97).collect();
        offsets.extend([0, 1, original.len() / 2, original.len() - 1]);
        offsets.sort_unstable();
        offsets.dedup();
        // Flip bit 0, not bit 5: a case flip of a hex digit in the
        // checksum header parses to the same value (from_str_radix is
        // case-insensitive), which is not corruption at all.
        for &off in &offsets {
            let mut bytes = original.clone();
            bytes[off] ^= 0x01;
            fs::write(&path, &bytes).unwrap();
            let peeked = ResultStore::open(&dir).unwrap().peek(cell.key);
            assert!(
                peeked.is_err(),
                "cell {i}, flipped byte {off}: a corrupt file must never be served"
            );
        }

        // Recovery: resume over the corrupted store must quarantine the
        // file, recompute exactly that cell, and land on the reference
        // digest. (The commit also restores a valid file for the next
        // loop iteration.)
        let mut bytes = original.clone();
        let mid = original.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let resumed = run_sweep(&spec, &dir, &opts()).unwrap();
        assert_eq!(resumed.cache_hits, 3);
        assert_eq!(resumed.recomputed, 1);
        assert_eq!(resumed.computed, 0);
        assert_eq!(resumed.outcomes[i].status, CellStatus::Recomputed);
        assert_eq!(resumed.store_digest, reference.store_digest);
        assert_eq!(
            resumed.outcomes[i].result_digest,
            reference.outcomes[i].result_digest
        );
        assert!(
            dir.join("quarantine")
                .join(format!("{}.json", cell.key))
                .exists(),
            "the corrupt evidence must be preserved in quarantine"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn missing_cell_file_with_committed_journal_record_is_recomputed() {
    let spec = tiny_spec();
    let dir = scratch("missing");
    let reference = run_sweep(&spec, &dir, &opts()).unwrap();
    let cells = spec.expand().unwrap();

    fs::remove_file(dir.join("cells").join(format!("{}.json", cells[2].key))).unwrap();
    let resumed = run_sweep(&spec, &dir, &opts()).unwrap();
    assert_eq!(resumed.cache_hits, 3);
    assert_eq!(
        resumed.recomputed, 1,
        "a journal-committed cell with a vanished file counts as recomputed, not computed"
    );
    assert_eq!(resumed.outcomes[2].status, CellStatus::Recomputed);
    assert_eq!(resumed.store_digest, reference.store_digest);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn deterministic_failures_fail_fast_and_commit_nothing() {
    let mut spec = tiny_spec();
    // A cycle budget no cell can meet: every cell fails with a
    // deterministic Watchdog error.
    spec.max_cycles = 100;
    let dir = scratch("failfast");
    let summary = run_sweep(&spec, &dir, &opts()).unwrap();
    assert_eq!(summary.failed, 4);
    assert_eq!(summary.cache_hits, 0);
    for o in &summary.outcomes {
        assert_eq!(o.status, CellStatus::Failed);
        assert_eq!(
            o.attempts, 1,
            "a deterministic failure must not burn the retry budget"
        );
        assert!(o.result_digest.is_none());
    }
    assert!(cell_digests(&spec, &dir).iter().all(|d| d.is_none()));

    // Failed cells are not cached: a re-run attempts them again.
    let again = run_sweep(&spec, &dir, &opts()).unwrap();
    assert_eq!(again.failed, 4);
    assert_eq!(again.store_digest, summary.store_digest);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn engine_axis_cells_agree_on_result_digests() {
    // The engines differ only in host strategy, never in simulated
    // results — swept side by side, their cells must carry distinct keys
    // but identical result digests.
    let mut spec = tiny_spec();
    spec.workloads = vec!["nn".into()];
    spec.design_points = vec!["baseline".into()];
    spec.engines = vec!["event".into(), "stepped".into(), "parallel:2:auto".into()];
    let dir = scratch("engines");
    let summary = run_sweep(&spec, &dir, &opts()).unwrap();
    assert_eq!(summary.cells, 3);
    assert_eq!(summary.failed, 0);
    let digests: Vec<_> = summary
        .outcomes
        .iter()
        .map(|o| o.result_digest.clone().unwrap())
        .collect();
    assert_eq!(digests[0], digests[1], "stepped diverged from event");
    assert_eq!(digests[0], digests[2], "parallel diverged from event");
    let keys: std::collections::BTreeSet<_> =
        summary.outcomes.iter().map(|o| o.key.clone()).collect();
    assert_eq!(keys.len(), 3, "engine choice must stay part of the address");
    let _ = fs::remove_dir_all(&dir);
}

proptest! {
    #[test]
    fn interleaved_partial_runs_and_resume_agree_with_from_scratch(
        boundaries in prop::collection::vec(0u64..1400, 0..3),
        garbage in prop::collection::vec(0u8..=255, 0..60),
    ) {
        let spec = tiny_spec();
        let reference_dir = scratch("prop-ref");
        let reference = run_sweep(&spec, &reference_dir, &opts()).unwrap();

        // A sequence of killed partial runs over one store...
        let dir = scratch("prop-run");
        for &b in &boundaries {
            let _ = run_sweep(&spec, &dir, &crash_opts(b));
        }
        // ...plus raw garbage appended to the journal (a torn tail from
        // some other writer)...
        if !garbage.is_empty() {
            fs::create_dir_all(&dir).unwrap();
            let journal = dir.join("journal.log");
            let mut bytes = fs::read(&journal).unwrap_or_default();
            bytes.extend_from_slice(&garbage);
            fs::write(&journal, &bytes).unwrap();
        }
        // ...must still resume to the exact from-scratch result.
        let resumed = run_sweep(&spec, &dir, &opts()).unwrap();
        prop_assert_eq!(resumed.failed, 0);
        prop_assert_eq!(&resumed.store_digest, &reference.store_digest);
        for (r, o) in reference.outcomes.iter().zip(&resumed.outcomes) {
            prop_assert_eq!(&r.result_digest, &o.result_digest);
        }
        let _ = fs::remove_dir_all(&reference_dir);
        let _ = fs::remove_dir_all(&dir);
    }
}
