//! Reproducibility: identical inputs must give bit-identical results.

use std::sync::Arc;

use gpumem::prelude::*;
use gpumem_sim::{KernelProgram, MemoryMode};
use gpumem_workloads::{params_of, SyntheticKernel};

fn small_gpu() -> GpuConfig {
    let mut cfg = GpuConfig::gtx480();
    cfg.num_cores = 3;
    cfg.num_partitions = 2;
    cfg
}

fn kernel(name: &str, seed_offset: u64) -> Arc<dyn KernelProgram> {
    let mut p = params_of(name).unwrap().scaled(0.1);
    p.seed = p.seed.wrapping_add(seed_offset);
    Arc::new(SyntheticKernel::new(p))
}

#[test]
fn repeated_runs_are_identical() {
    let cfg = small_gpu();
    for name in ["cfd", "nw", "lbm"] {
        let a = run_benchmark(&cfg, &kernel(name, 0), MemoryMode::Hierarchy).unwrap();
        let b = run_benchmark(&cfg, &kernel(name, 0), MemoryMode::Hierarchy).unwrap();
        assert_eq!(a.cycles, b.cycles, "{name}");
        assert_eq!(a.instructions, b.instructions, "{name}");
        assert_eq!(a.l1.stats, b.l1.stats, "{name}");
        assert_eq!(
            a.l2.as_ref().unwrap().stats,
            b.l2.as_ref().unwrap().stats,
            "{name}"
        );
        assert_eq!(
            a.dram.as_ref().unwrap().stats,
            b.dram.as_ref().unwrap().stats,
            "{name}"
        );
    }
}

#[test]
fn different_seeds_change_gather_behaviour() {
    let cfg = small_gpu();
    let a = run_benchmark(&cfg, &kernel("sc", 0), MemoryMode::Hierarchy).unwrap();
    let b = run_benchmark(&cfg, &kernel("sc", 1), MemoryMode::Hierarchy).unwrap();
    // Same instruction counts (structure unchanged)...
    assert_eq!(a.instructions, b.instructions);
    // ...but different addresses ⇒ different timing.
    assert_ne!(a.cycles, b.cycles);
}

#[test]
fn parallel_runner_is_deterministic() {
    // Thread scheduling must not leak into results.
    let cfg = small_gpu();
    let specs: Vec<gpumem::RunSpec> = ["cfd", "dwt2d", "nn", "sc"]
        .iter()
        .map(|n| gpumem::RunSpec {
            cfg: cfg.clone(),
            program: kernel(n, 0),
            mode: MemoryMode::Hierarchy,
        })
        .collect();
    let first = run_benchmarks_parallel(&specs).unwrap();
    let second = run_benchmarks_parallel(&specs).unwrap();
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
    }
}

#[test]
fn report_json_roundtrip_preserves_results() {
    let cfg = small_gpu();
    let report = run_benchmark(&cfg, &kernel("ss", 0), MemoryMode::Hierarchy).unwrap();
    let json = serde_json::to_string(&report).unwrap();
    let back: gpumem_sim::SimReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.cycles, report.cycles);
    assert_eq!(back.ipc, report.ipc);
    assert_eq!(back.l1.stats, report.l1.stats);
}
