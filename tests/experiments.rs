//! Integration tests of the paper's three experiments on a scaled-down
//! suite: the qualitative claims must hold at every scale.

use std::sync::Arc;

use gpumem::experiments::congestion::congestion_study;
use gpumem::experiments::design_space::design_space_exploration;
use gpumem::experiments::latency_tolerance::latency_tolerance_profile;
use gpumem::prelude::*;
use gpumem_sim::KernelProgram;
use gpumem_workloads::{params_of, SyntheticKernel};

fn quick_suite(names: &[&str]) -> Vec<Arc<dyn KernelProgram>> {
    names
        .iter()
        .map(|n| {
            Arc::new(SyntheticKernel::new(params_of(n).unwrap().scaled(0.12)))
                as Arc<dyn KernelProgram>
        })
        .collect()
}

fn small_gpu() -> GpuConfig {
    let mut cfg = GpuConfig::gtx480();
    cfg.num_cores = 4;
    cfg.num_partitions = 2;
    cfg
}

#[test]
fn latency_tolerance_curve_is_monotonically_damaging() {
    let cfg = small_gpu();
    let program = quick_suite(&["nn"]).pop().unwrap();
    let profile = latency_tolerance_profile(&cfg, &program, &[0, 100, 200, 400, 800]).unwrap();
    // Normalized IPC must not increase with latency (small tolerance for
    // scheduling noise).
    for w in profile.points.windows(2) {
        assert!(
            w[1].normalized_ipc <= w[0].normalized_ipc * 1.02,
            "IPC rose with latency: {:?} -> {:?}",
            w[0],
            w[1]
        );
    }
    // At zero latency a memory-bound kernel runs much faster than baseline.
    assert!(profile.points[0].normalized_ipc > 1.5);
    assert_eq!(profile.benchmark, "nn");
}

#[test]
fn latency_intercept_tracks_measured_baseline_latency() {
    // The paper's reading of Fig. 1: the curve crosses 1.0 at the
    // baseline's effective memory latency. Verify the intercept is within
    // 25% of the directly measured average miss latency.
    let cfg = small_gpu();
    let program = quick_suite(&["sc"]).pop().unwrap();
    let lats: Vec<u64> = (0..=16).map(|i| i * 50).collect();
    let profile = latency_tolerance_profile(&cfg, &program, &lats).unwrap();
    let intercept = profile
        .baseline_intercept
        .expect("baseline latency inside sweep range");
    let measured = profile.baseline_avg_miss_latency;
    let ratio = intercept / measured;
    assert!(
        (0.7..1.4).contains(&ratio),
        "intercept {intercept:.0} vs measured {measured:.0}"
    );
}

#[test]
fn compute_bound_kernel_is_latency_tolerant() {
    let cfg = small_gpu();
    let program = quick_suite(&["leukocyte"]).pop().unwrap();
    let profile = latency_tolerance_profile(&cfg, &program, &[0, 200, 400]).unwrap();
    // leukocyte's curve is nearly flat: peak gain small.
    assert!(
        profile.peak_normalized_ipc() < 2.0,
        "leukocyte peak {} should be small",
        profile.peak_normalized_ipc()
    );
}

#[test]
fn congestion_study_reports_congested_queues() {
    let cfg = small_gpu();
    let study = congestion_study(&cfg, &quick_suite(&["nn", "cfd", "lbm"])).unwrap();
    assert_eq!(study.rows.len(), 3);
    assert!(study.avg_l2_access_full > 0.05, "L2 queues should congest");
    for r in &study.rows {
        assert!((0.0..=1.0).contains(&r.l2_access_full));
        assert!((0.0..=1.0).contains(&r.dram_sched_full));
        assert!(
            r.avg_l1_miss_latency > 120.0,
            "{}: latency under ideal",
            r.benchmark
        );
    }
}

#[test]
fn dse_reproduces_the_papers_qualitative_claims() {
    let cfg = small_gpu();
    let suite = quick_suite(&["nn", "sc", "lbm", "dwt2d"]);
    let study = design_space_exploration(&cfg, &suite, &DesignPoint::SECTION_IV).unwrap();

    let avg = |dp| {
        study
            .result_for(dp)
            .map(|r| r.average_speedup())
            .expect("present")
    };
    let l1 = avg(DesignPoint::L1_ONLY);
    let l2 = avg(DesignPoint::L2_ONLY);
    let dram = avg(DesignPoint::DRAM_ONLY);
    let l2dram = avg(DesignPoint::L2_DRAM);

    // Claim 1: the cache hierarchy (L2) is the dominant bottleneck —
    // scaling it beats scaling the off-chip bandwidth.
    assert!(l2 > dram, "L2 {l2:.3} must beat DRAM {dram:.3}");
    // Claim 2: L2 scaling beats L1 scaling.
    assert!(l2 > l1, "L2 {l2:.3} must beat L1 {l1:.3}");
    // Claim 3: synergy — combined L2+DRAM gain exceeds the sum of parts.
    assert_eq!(
        study.synergy_exceeds_sum(
            DesignPoint::L2_ONLY,
            DesignPoint::DRAM_ONLY,
            DesignPoint::L2_DRAM
        ),
        Some(true),
        "L2+DRAM {l2dram:.3} vs L2 {l2:.3} + DRAM {dram:.3}"
    );
    // Claim 4 (Section V): improving the cache hierarchy surpasses a
    // baseline cache hierarchy with high-bandwidth DRAM.
    assert!(l2 > dram);
}

#[test]
fn dse_baseline_ipcs_are_positive_and_named() {
    let cfg = small_gpu();
    let suite = quick_suite(&["nn", "nw"]);
    let study = design_space_exploration(&cfg, &suite, &[DesignPoint::L2_ONLY]).unwrap();
    assert_eq!(study.baseline_ipc.len(), 2);
    assert_eq!(study.baseline_ipc[0].0, "nn");
    assert!(study.baseline_ipc.iter().all(|(_, ipc)| *ipc > 0.0));
}
