//! Conservation and liveness invariants of the full memory system.
//!
//! Every load that leaves an L1 must produce exactly one response; every
//! component must drain to idle at kernel completion; statistics must be
//! internally consistent.

use std::sync::Arc;

use gpumem::prelude::*;
use gpumem_sim::{KernelProgram, MemoryMode};
use gpumem_workloads::{params_of, SyntheticKernel, WorkloadParams};

fn small_gpu() -> GpuConfig {
    let mut cfg = GpuConfig::gtx480();
    cfg.num_cores = 3;
    cfg.num_partitions = 2;
    cfg
}

fn run(cfg: &GpuConfig, p: WorkloadParams) -> gpumem_sim::SimReport {
    let program = Arc::new(SyntheticKernel::new(p)) as Arc<dyn KernelProgram>;
    run_benchmark(cfg, &program, MemoryMode::Hierarchy).expect("completes")
}

#[test]
fn one_response_per_distinct_l1_miss() {
    let cfg = small_gpu();
    for name in BENCHMARK_NAMES {
        let report = run(&cfg, params_of(name).unwrap().scaled(0.1));
        let l1 = &report.l1.stats;
        let distinct_misses = l1.load_misses - l1.merged_misses;
        let noc = report.noc.expect("hierarchy mode");
        // Every distinct L1 load miss crosses the response network once.
        assert_eq!(
            noc.response.packets_ejected, distinct_misses,
            "{name}: response count mismatch"
        );
        assert_eq!(
            noc.response.packets_injected, noc.response.packets_ejected,
            "{name}: packets lost in the response crossbar"
        );
    }
}

#[test]
fn request_network_carries_misses_and_stores() {
    let cfg = small_gpu();
    let report = run(&cfg, params_of("lbm").unwrap().scaled(0.1));
    let l1 = &report.l1.stats;
    let noc = report.noc.expect("hierarchy mode");
    let expected = (l1.load_misses - l1.merged_misses) + l1.stores;
    assert_eq!(noc.request.packets_injected, expected);
    assert_eq!(noc.request.packets_injected, noc.request.packets_ejected);
}

#[test]
fn l2_fills_match_l2_misses() {
    let cfg = small_gpu();
    for name in ["cfd", "nn", "sc"] {
        let report = run(&cfg, params_of(name).unwrap().scaled(0.1));
        let l2 = report.l2.expect("hierarchy mode");
        assert_eq!(
            l2.stats.fills, l2.stats.misses,
            "{name}: every L2 miss must fill exactly once"
        );
    }
}

#[test]
fn dram_reads_match_l2_misses_and_writes_match_stores_plus_writebacks() {
    let cfg = small_gpu();
    let report = run(&cfg, params_of("lbm").unwrap().scaled(0.1));
    let l2 = report.l2.expect("hierarchy mode");
    let dram = report.dram.expect("hierarchy mode");
    assert_eq!(dram.stats.reads, l2.stats.misses);
    // DRAM writes = store write-throughs that *missed* in L2 are reads
    // (write-allocate) — actual DRAM writes are only L2 writebacks.
    assert_eq!(dram.stats.writes, l2.stats.writebacks);
}

#[test]
fn queue_statistics_are_internally_consistent() {
    let cfg = small_gpu();
    let report = run(&cfg, params_of("ss").unwrap().scaled(0.1));
    let l2 = report.l2.expect("hierarchy mode");
    let dram = report.dram.expect("hierarchy mode");
    for (name, q) in [
        ("l1_miss", &report.l1.miss_queue),
        ("lsu", &report.l1.lsu_queue),
        ("l2_access", &l2.access_queue),
        ("l2_miss", &l2.miss_queue),
        ("l2_response", &l2.response_queue),
        ("l2_to_icnt", &l2.to_icnt_queue),
        ("dram_sched", &dram.scheduler_queue),
        ("dram_return", &dram.return_queue),
    ] {
        assert!(q.ticks_full <= q.ticks_nonempty, "{name}: full > nonempty");
        assert!(q.ticks_nonempty <= q.ticks, "{name}: nonempty > ticks");
        assert_eq!(q.pushes, q.pops, "{name}: queue did not drain");
        let f = q.full_fraction_of_usage();
        assert!((0.0..=1.0).contains(&f), "{name}: fraction {f}");
    }
}

#[test]
fn stall_accounting_partitions_cycles() {
    let cfg = small_gpu();
    let report = run(&cfg, params_of("cfd").unwrap().scaled(0.1));
    let c = &report.core;
    // Issue cycles + stalled cycles cannot exceed total core-cycles.
    let stalled =
        c.stall_memory + c.stall_mem_pipeline + c.stall_barrier + c.stall_compute + c.idle_cycles;
    assert!(
        stalled <= c.cycles,
        "stalls {stalled} > cycles {}",
        c.cycles
    );
    // A memory-intensive benchmark must show memory stalls.
    assert!(c.stall_memory > 0);
}

#[test]
fn timeline_stamps_are_monotonic() {
    // Use the fixed-latency backend where the full timeline is simple and
    // check miss latencies equal the configured value exactly.
    let cfg = small_gpu();
    let program = Arc::new(SyntheticKernel::new(params_of("nn").unwrap().scaled(0.1)))
        as Arc<dyn KernelProgram>;
    let report = run_benchmark(&cfg, &program, MemoryMode::FixedLatency(333)).unwrap();
    let lat = &report.l1.miss_latency;
    assert_eq!(lat.min(), Some(333));
    assert_eq!(lat.max(), Some(333));
}

#[test]
fn loaded_latency_exceeds_unloaded_ideal() {
    // Section II's premise: loaded latencies are far above the 120/220
    // cycle ideals on memory-intensive workloads.
    let report = run(&GpuConfig::gtx480(), params_of("cfd").unwrap().scaled(0.3));
    assert!(
        report.avg_l1_miss_latency() > 220.0,
        "loaded latency {} should exceed the DRAM ideal",
        report.avg_l1_miss_latency()
    );
}
