//! Property tests for the fetch-lifecycle tracing layer.
//!
//! Three guarantees back the latency-breakdown numbers:
//!
//! 1. **Merge insensitivity** — per-shard histograms combine to the same
//!    result no matter how the shards are grouped or ordered, so the
//!    parallel engine's reassembly cannot perturb the breakdown.
//! 2. **Observational transparency** — enabling tracing must not change a
//!    single bit of the rest of the [`SimReport`]; the instrument cannot
//!    disturb the experiment.
//! 3. **Timeline sanity** — every traced fetch's stage spans are
//!    contiguous, monotone and telescope exactly to its end-to-end
//!    latency, on real simulations, for every benchmark the generator
//!    picks.

use std::sync::Arc;

use gpumem::prelude::*;
use gpumem::DEFAULT_MAX_CYCLES;
use gpumem_sim::{KernelProgram, TraceConfig};
use gpumem_types::Log2Histogram;
use gpumem_workloads::{params_of, SyntheticKernel, BENCHMARK_NAMES};
use proptest::prelude::*;

fn small_gpu() -> GpuConfig {
    let mut cfg = GpuConfig::gtx480();
    cfg.num_cores = 3;
    cfg.num_partitions = 2;
    cfg
}

fn kernel(name: &str) -> Arc<dyn KernelProgram> {
    let p = params_of(name).unwrap().scaled(0.1);
    Arc::new(SyntheticKernel::new(p))
}

fn run_benchmark_report(name: &str, mode: MemoryMode, traced: bool) -> SimReport {
    let mut sim = GpuSimulator::new(small_gpu(), kernel(name), mode);
    if traced {
        sim.enable_trace(TraceConfig::default());
    }
    sim.run_stepped(DEFAULT_MAX_CYCLES).unwrap()
}

fn shard_strategy() -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(prop::collection::vec(0u64..1_000_000, 0..40), 0..8)
}

proptest! {
    /// Folding per-shard histograms forward, backward, or recording every
    /// value into one histogram directly all yield identical state, so the
    /// fixed shard ordering the engines use is a convention, not a
    /// correctness requirement.
    #[test]
    fn histogram_merge_is_order_insensitive(shards in shard_strategy()) {
        let per_shard: Vec<Log2Histogram> = shards
            .iter()
            .map(|vals| {
                let mut h = Log2Histogram::new();
                for &v in vals {
                    h.record(v);
                }
                h
            })
            .collect();

        let mut forward = Log2Histogram::new();
        for h in &per_shard {
            forward.merge(h);
        }
        let mut backward = Log2Histogram::new();
        for h in per_shard.iter().rev() {
            backward.merge(h);
        }
        let mut flat = Log2Histogram::new();
        for vals in &shards {
            for &v in vals {
                flat.record(v);
            }
        }
        prop_assert_eq!(&forward, &backward);
        prop_assert_eq!(&forward, &flat);
        prop_assert_eq!(
            forward.count(),
            shards.iter().map(|v| v.len() as u64).sum::<u64>()
        );
    }
}

proptest! {
    /// Tracing is a pure observer: with the breakdown field stripped, a
    /// traced report is byte-for-byte the untraced report — IPC, queue
    /// stats, latency percentiles, everything.
    #[test]
    fn tracing_never_perturbs_the_report(
        bench in 0usize..BENCHMARK_NAMES.len(),
        fixed in proptest::arbitrary::any::<bool>(),
    ) {
        let name = BENCHMARK_NAMES[bench];
        let mode = if fixed {
            MemoryMode::FixedLatency(800)
        } else {
            MemoryMode::Hierarchy
        };
        let mut plain = run_benchmark_report(name, mode, false);
        let mut traced = run_benchmark_report(name, mode, true);
        prop_assert!(plain.latency_breakdown.is_none());
        let bd = traced
            .latency_breakdown
            .take()
            .expect("trace enabled, breakdown must be present");
        prop_assert!(bd.reconciles(), "{}: breakdown does not reconcile", name);
        plain.host = None;
        traced.host = None;
        plain.latency_breakdown = None;
        prop_assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&traced).unwrap(),
            "{}: tracing perturbed the report", name
        );
    }
}

proptest! {
    /// On real runs, every stage timeline is monotone (the breakdown's
    /// violation counters stay zero) and each reported slow fetch's spans
    /// are contiguous and sum exactly to its end-to-end latency.
    #[test]
    fn stage_timelines_are_monotone_and_telescoping(
        bench in 0usize..BENCHMARK_NAMES.len(),
    ) {
        let name = BENCHMARK_NAMES[bench];
        let report = run_benchmark_report(name, MemoryMode::Hierarchy, true);
        let bd = report.latency_breakdown.expect("breakdown present");
        prop_assert_eq!(bd.monotone_violations, 0);
        prop_assert_eq!(bd.unknown_pairs, 0);
        prop_assert_eq!(bd.incomplete_fetches, 0);
        prop_assert_eq!(bd.stage_total_cycles, bd.end_to_end_total_cycles);
        prop_assert!(!bd.slowest.is_empty(), "{}: no slow fetches captured", name);
        for f in &bd.slowest {
            prop_assert!(!f.spans.is_empty());
            let mut total = 0u64;
            for (i, s) in f.spans.iter().enumerate() {
                prop_assert!(
                    s.end >= s.start,
                    "{}: fetch {} span {} runs backwards", name, f.fetch_id, s.stage
                );
                if i > 0 {
                    prop_assert_eq!(
                        s.start, f.spans[i - 1].end,
                        "{}: fetch {} has a gap before {}", name, f.fetch_id, s.stage
                    );
                }
                total += s.end - s.start;
            }
            prop_assert_eq!(
                total, f.latency,
                "{}: fetch {} spans do not telescope to its latency",
                name, f.fetch_id
            );
        }
    }
}
