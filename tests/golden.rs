//! Golden-trace regression harness.
//!
//! The latency breakdown produced by the tracing layer is the paper's core
//! measurement (§III, Fig. 4–6), so its exact numbers for a fixed seed set
//! are pinned as committed snapshots under `tests/golden/`. Any change to
//! cache, crossbar, DRAM or scheduler timing — intended or not — shows up
//! as a snapshot diff here before it can silently shift a figure.
//!
//! To regenerate after an intentional model change:
//!
//! ```text
//! GPUMEM_BLESS=1 cargo test --test golden
//! ```
//!
//! and commit the rewritten files alongside the change that caused them.

use std::path::PathBuf;
use std::sync::Arc;

use gpumem::prelude::*;
use gpumem::DEFAULT_MAX_CYCLES;
use gpumem_sim::{KernelProgram, TraceConfig};
use gpumem_workloads::{params_of, SyntheticKernel};

/// The fixed seed set: three paper benchmarks spanning the spectrum
/// (cache-sensitive, streaming, balanced) plus the three ML kernels
/// (tiled GEMM, im2col conv, attention). Kept small so the suite runs
/// from a clean checkout in seconds.
const GOLDEN_BENCHMARKS: &[&str] = &["sc", "lbm", "ss", "gemm", "conv", "attn"];

fn small_gpu() -> GpuConfig {
    let mut cfg = GpuConfig::gtx480();
    cfg.num_cores = 3;
    cfg.num_partitions = 2;
    cfg
}

fn kernel(name: &str) -> Arc<dyn KernelProgram> {
    let p = params_of(name).unwrap().scaled(0.1);
    Arc::new(SyntheticKernel::new(p))
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn blessing() -> bool {
    std::env::var("GPUMEM_BLESS").is_ok_and(|v| v == "1")
}

/// Compares `actual` against the committed snapshot, or rewrites the
/// snapshot when blessing. On mismatch the panic names the first
/// diverging line so the diff is readable without external tooling.
fn check_snapshot(name: &str, actual: &str) {
    let path = golden_dir().join(format!("{name}.json"));
    if blessing() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {}: {e}\n\
             run `GPUMEM_BLESS=1 cargo test --test golden` and commit the result",
            path.display()
        )
    });
    if expected == actual {
        return;
    }
    let mut diverged = None;
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            diverged = Some((i + 1, e.to_owned(), a.to_owned()));
            break;
        }
    }
    let detail = match diverged {
        Some((line, e, a)) => {
            format!("first divergence at line {line}:\n  golden: {e}\n  actual: {a}")
        }
        None => format!(
            "line count differs: golden {} vs actual {}",
            expected.lines().count(),
            actual.lines().count()
        ),
    };
    panic!(
        "{name}: latency breakdown drifted from golden snapshot {}\n{detail}\n\
         if the timing change is intentional, re-bless with \
         `GPUMEM_BLESS=1 cargo test --test golden`",
        path.display()
    );
}

/// Runs one benchmark with tracing on and returns its pretty-printed
/// latency breakdown. Stepped engine: the differential suite already
/// proves the other engines produce the bit-identical report.
fn traced_breakdown(name: &str) -> String {
    let mut sim = GpuSimulator::new(small_gpu(), kernel(name), MemoryMode::Hierarchy);
    sim.enable_trace(TraceConfig::default());
    let report = sim.run_stepped(DEFAULT_MAX_CYCLES).unwrap();
    let bd = report
        .latency_breakdown
        .expect("trace enabled, breakdown must be present");
    assert!(
        bd.reconciles(),
        "{name}: stage sums do not reconcile with end-to-end latency"
    );
    let mut json = serde_json::to_string_pretty(&bd).unwrap();
    json.push('\n');
    json
}

#[test]
fn latency_breakdowns_match_golden_snapshots() {
    for name in GOLDEN_BENCHMARKS {
        check_snapshot(name, &traced_breakdown(name));
    }
}

/// FNV-1a, the same construction the simulator uses for deterministic
/// fingerprints; good enough to pin file contents in a snapshot.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// The committed experiment outputs under `results/` are inputs to the
/// paper-facing plots; pin a digest of each so accidental regeneration
/// with drifted numbers is caught in review.
#[test]
fn results_files_match_golden_digest() {
    let results = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results");
    let mut names: Vec<String> = std::fs::read_dir(&results)
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().into_string().unwrap();
            name.ends_with(".json").then_some(name)
        })
        .collect();
    names.sort();
    let mut digest = String::from("{\n");
    for (i, name) in names.iter().enumerate() {
        let bytes = std::fs::read(results.join(name)).unwrap();
        let sep = if i + 1 == names.len() { "" } else { "," };
        digest.push_str(&format!("  \"{name}\": \"{:016x}\"{sep}\n", fnv1a(&bytes)));
    }
    digest.push_str("}\n");
    check_snapshot("results_digest", &digest);
}
