//! Reproduces one curve of the paper's Fig. 1: normalized IPC versus a
//! fixed L1 miss latency, for one benchmark.
//!
//! ```text
//! cargo run --release --example latency_sweep [benchmark] [scale]
//! ```
//!
//! Prints the curve as a table plus an ASCII sketch, and reports the two
//! observations the paper draws from Fig. 1: the baseline intercept is far
//! beyond the performance plateau, and far above the 120/220-cycle ideals.

use gpumem::experiments::latency_tolerance::{latency_tolerance_profile, FIG1_LATENCIES};
use gpumem::prelude::*;
use gpumem_workloads::{params_of, SyntheticKernel};
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "cfd".to_owned());
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.5);

    let params = params_of(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark {name}; pick one of {BENCHMARK_NAMES:?}");
        std::process::exit(2);
    });
    let program: Arc<dyn gpumem_sim::KernelProgram> =
        Arc::new(SyntheticKernel::new(params.scaled(scale)));

    let cfg = GpuConfig::gtx480();
    eprintln!(
        "sweeping `{name}` over {} latency points ...",
        FIG1_LATENCIES.len()
    );
    let profile =
        latency_tolerance_profile(&cfg, &program, &FIG1_LATENCIES).expect("sweep completes");

    let peak = profile.peak_normalized_ipc();
    println!("latency  norm-IPC");
    for p in &profile.points {
        let bars = ((p.normalized_ipc / peak) * 50.0).round() as usize;
        println!(
            "{:>7}  {:>8.3} |{}",
            p.latency,
            p.normalized_ipc,
            "#".repeat(bars)
        );
    }
    println!();
    println!("baseline IPC              : {:.3}", profile.baseline_ipc);
    println!(
        "baseline avg miss latency : {:.0} cycles",
        profile.baseline_avg_miss_latency
    );
    println!(
        "curve crosses 1.0 at      : {}",
        profile
            .baseline_intercept
            .map_or("beyond the sweep".to_owned(), |x| format!("{x:.0} cycles"))
    );
    println!("performance plateau ends  : {} cycles", profile.plateau_end);
    println!();
    if profile.baseline_beyond_plateau() {
        println!("observation ①: the baseline sits far beyond the plateau — reducing");
        println!("memory latency would directly improve performance.");
    } else {
        println!("this benchmark is latency-tolerant: the baseline sits on the plateau.");
    }
    if profile.baseline_avg_miss_latency > 220.0 {
        println!(
            "observation ②: the baseline latency ({:.0}) is far above the ideal",
            profile.baseline_avg_miss_latency
        );
        println!("L2 (120) and DRAM (220) access latencies — the memory system is congested.");
    }
}
