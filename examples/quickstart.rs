//! Quickstart: build the paper's GTX480 baseline, run one benchmark, and
//! read the headline measurements.
//!
//! ```text
//! cargo run --release --example quickstart [benchmark]
//! ```

use gpumem::prelude::*;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "sc".to_owned());
    let program = by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark {name}; pick one of {BENCHMARK_NAMES:?}");
        std::process::exit(2);
    });

    // The paper's baseline: GTX480 as configured in GPGPU-Sim, with every
    // Table I parameter at its baseline value.
    let cfg = GpuConfig::gtx480();
    println!("simulating `{name}` on the GTX480 baseline ...");

    let report = run_benchmark(&cfg, &program, MemoryMode::Hierarchy).expect("run completes");

    println!();
    println!("benchmark            : {}", report.benchmark);
    println!("cycles               : {}", report.cycles);
    println!("warp instructions    : {}", report.instructions);
    println!("IPC                  : {:.3}", report.ipc);
    println!(
        "avg L1 miss latency  : {:.0} cycles (ideal: 120 L2 hit / 220 DRAM)",
        report.avg_l1_miss_latency()
    );
    println!(
        "memory stall cycles  : {:.1}% of core cycles",
        report.memory_stall_fraction() * 100.0
    );
    println!(
        "L1 load miss rate    : {:.1}%",
        report.l1.stats.miss_rate() * 100.0
    );
    if let Some(l2) = &report.l2 {
        println!("L2 hit rate          : {:.1}%", l2.stats.hit_rate() * 100.0);
        println!(
            "L2 access queue full : {:.1}% of its usage lifetime (paper avg: 46%)",
            l2.access_queue.full_fraction_of_usage() * 100.0
        );
    }
    if let Some(dram) = &report.dram {
        println!(
            "DRAM queue full      : {:.1}% of its usage lifetime (paper avg: 39%)",
            dram.scheduler_queue.full_fraction_of_usage() * 100.0
        );
        println!(
            "DRAM row-hit rate    : {:.1}%",
            dram.stats.row_hit_rate() * 100.0
        );
    }

    // Now the same kernel with the congestion removed: a fixed 120-cycle
    // memory (the L2 ideal) with unlimited bandwidth.
    let ideal =
        run_benchmark(&cfg, &program, MemoryMode::FixedLatency(120)).expect("ideal run completes");
    println!();
    println!(
        "with an ideal 120-cycle memory the same kernel runs {:.2}x faster —",
        ideal.ipc / report.ipc
    );
    println!("that gap is the congestion the paper characterizes.");
}
