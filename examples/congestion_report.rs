//! Reproduces the paper's Section III congestion measurement: how often
//! the L2 access queues and the DRAM scheduler queues are full during
//! their usage lifetime, across the benchmark suite.
//!
//! ```text
//! cargo run --release --example congestion_report [scale]
//! ```

use gpumem::experiments::congestion::congestion_study;
use gpumem::prelude::*;
use gpumem::text;
use gpumem_workloads::{params_of, SyntheticKernel};
use std::sync::Arc;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);

    let suite: Vec<Arc<dyn gpumem_sim::KernelProgram>> = BENCHMARK_NAMES
        .iter()
        .map(|n| {
            Arc::new(SyntheticKernel::new(
                params_of(n).expect("canonical").scaled(scale),
            )) as Arc<dyn gpumem_sim::KernelProgram>
        })
        .collect();

    let cfg = GpuConfig::gtx480();
    eprintln!(
        "running {} benchmarks on the baseline (scale {scale}) ...",
        suite.len()
    );
    let study = congestion_study(&cfg, &suite).expect("study completes");
    println!("{}", text::congestion_table(&study));

    // The causal chain the paper describes: congestion → latency →
    // stalls. Show the correlation across the suite.
    println!("congestion → latency → stalls, per benchmark:");
    for r in &study.rows {
        println!(
            "  {:<10} queues {:>4.0}%/{:>4.0}% full → {:>5.0}-cycle misses → {:>4.0}% mem-stalled cores",
            r.benchmark,
            r.l2_access_full * 100.0,
            r.dram_sched_full * 100.0,
            r.avg_l1_miss_latency,
            r.memory_stall_fraction * 100.0,
        );
    }
}
