//! Reproduces the paper's Section IV design-space exploration on a
//! configurable subset of the suite: scale the Table I parameters of the
//! L1, L2 and DRAM (alone and combined) and measure the speedups.
//!
//! ```text
//! cargo run --release --example design_space [scale] [bench ...]
//! ```

use gpumem::experiments::design_space::design_space_exploration;
use gpumem::prelude::*;
use gpumem::text;
use gpumem_workloads::{params_of, SyntheticKernel};
use std::sync::Arc;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = match args.first().and_then(|s| s.parse().ok()) {
        Some(s) => {
            args.remove(0);
            s
        }
        None => 0.4,
    };
    let names: Vec<String> = if args.is_empty() {
        BENCHMARK_NAMES.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };

    let suite: Vec<Arc<dyn gpumem_sim::KernelProgram>> = names
        .iter()
        .map(|n| {
            let p = params_of(n).unwrap_or_else(|| {
                eprintln!("unknown benchmark {n}");
                std::process::exit(2);
            });
            Arc::new(SyntheticKernel::new(p.scaled(scale))) as Arc<dyn gpumem_sim::KernelProgram>
        })
        .collect();

    let cfg = GpuConfig::gtx480();
    println!("{}", text::table_i());
    eprintln!(
        "exploring {} design points × {} benchmarks (scale {scale}) ...",
        DesignPoint::SECTION_IV.len(),
        suite.len()
    );
    let study = design_space_exploration(&cfg, &suite, &DesignPoint::SECTION_IV)
        .expect("exploration completes");
    println!("{}", text::dse_table(&study));

    // The paper's synergy argument, spelled out.
    if let Some(true) = study.synergy_exceeds_sum(
        DesignPoint::L2_ONLY,
        DesignPoint::DRAM_ONLY,
        DesignPoint::L2_DRAM,
    ) {
        println!("synergy confirmed: the L2+DRAM gain exceeds the sum of the isolated gains.");
    }
    let l2 = study
        .result_for(DesignPoint::L2_ONLY)
        .map(|r| r.average_speedup());
    let dram = study
        .result_for(DesignPoint::DRAM_ONLY)
        .map(|r| r.average_speedup());
    if let (Some(l2), Some(dram)) = (l2, dram) {
        if l2 > dram {
            println!(
                "cache-hierarchy scaling (avg {l2:.2}x) beats high-bandwidth DRAM alone (avg {dram:.2}x),"
            );
            println!("the paper's central conclusion.");
        }
    }
}
