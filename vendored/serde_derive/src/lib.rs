//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented without `syn`/`quote` (neither is available offline): the
//! input item is parsed directly from the `proc_macro::TokenStream`, and the
//! generated impl is assembled as a string and re-parsed. The supported
//! grammar is intentionally narrow — plain structs (named, tuple or unit)
//! and enums with unit / named-field / tuple variants, no generic
//! parameters and no `#[serde(...)]` attributes — which covers every
//! derived type in this workspace.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::fmt::Write as _;

/// Parsed shape of the item a derive is attached to.
struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derive `serde::Serialize` by converting the item into a `serde::Value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` by reconstructing the item from a
/// `serde::Value`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive does not support generic parameters on `{name}`");
    }
    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g))
            }
            other => panic!("unexpected enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde stub derive supports only structs and enums, found `{other}`"),
    };
    Input { name, kind }
}

/// Advance past any `#[...]` attributes (including doc comments) and a
/// `pub` / `pub(...)` visibility marker.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' then the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Skip a type (or any expression) up to and including the next top-level
/// `,`. Only `<`/`>` need manual depth tracking: parenthesised and bracketed
/// groups arrive as single nested token trees.
fn skip_past_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(group: &Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_past_comma(&tokens, &mut i);
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(group: &Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_past_comma(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(group: &Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        skip_past_comma(&tokens, &mut i);
        variants.push(Variant { name, kind });
    }
    variants
}

fn string_lit(s: &str) -> String {
    format!("::std::string::String::from(\"{s}\")")
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut entries = String::new();
            for f in fields {
                let _ = write!(
                    entries,
                    "({}, ::serde::Serialize::to_value(&self.{f})),",
                    string_lit(f)
                );
            }
            format!("::serde::Value::Object(::std::vec![{entries}])")
        }
        Kind::TupleStruct(0) | Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let mut items = String::new();
            for idx in 0..*n {
                let _ = write!(items, "::serde::Serialize::to_value(&self.{idx}),");
            }
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vname} => ::serde::Value::String({}),",
                            string_lit(vname)
                        );
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| format!("{f}: __f_{f}")).collect();
                        let mut entries = String::new();
                        for f in fields {
                            let _ = write!(
                                entries,
                                "({}, ::serde::Serialize::to_value(__f_{f})),",
                                string_lit(f)
                            );
                        }
                        let _ = write!(
                            arms,
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![({}, \
                             ::serde::Value::Object(::std::vec![{entries}]))]),",
                            binds.join(", "),
                            string_lit(vname)
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|idx| format!("__t{idx}")).collect();
                        let content = if *n == 1 {
                            "::serde::Serialize::to_value(__t0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(","))
                        };
                        let _ = write!(
                            arms,
                            "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![({}, \
                             {content})]),",
                            binds.join(", "),
                            string_lit(vname)
                        );
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let _ = write!(
                    inits,
                    "{f}: ::serde::__get_field(__obj, \"{f}\", \"{name}\")?,"
                );
            }
            format!(
                "let __obj = __value.as_object().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected object for `{name}`\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Kind::TupleStruct(0) => format!("::std::result::Result::Ok({name}())"),
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Kind::TupleStruct(n) => {
            let mut items = String::new();
            for idx in 0..*n {
                let _ = write!(items, "::serde::Deserialize::from_value(&__items[{idx}])?,");
            }
            format!(
                "let __items = __value.as_array().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected array for `{name}`\"))?;\n\
                 if __items.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::custom(\"wrong tuple length for `{name}`\")); }}\n\
                 ::std::result::Result::Ok({name}({items}))"
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut content_arms = String::new();
            let mut has_content = false;
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            unit_arms,
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                        );
                    }
                    VariantKind::Named(fields) => {
                        has_content = true;
                        let mut inits = String::new();
                        for f in fields {
                            let _ = write!(
                                inits,
                                "{f}: ::serde::__get_field(__fields, \"{f}\", \"{name}::{vname}\")?,"
                            );
                        }
                        let _ = write!(
                            content_arms,
                            "\"{vname}\" => {{\n\
                             let __fields = __content.as_object().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected object for `{name}::{vname}`\"))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                             }},"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        has_content = true;
                        if *n == 1 {
                            let _ = write!(
                                content_arms,
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_value(__content)?)),"
                            );
                        } else {
                            let mut items = String::new();
                            for idx in 0..*n {
                                let _ = write!(
                                    items,
                                    "::serde::Deserialize::from_value(&__items[{idx}])?,"
                                );
                            }
                            let _ = write!(
                                content_arms,
                                "\"{vname}\" => {{\n\
                                 let __items = __content.as_array().ok_or_else(|| \
                                 ::serde::DeError::custom(\"expected array for `{name}::{vname}`\"))?;\n\
                                 if __items.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::DeError::custom(\"wrong tuple length for `{name}::{vname}`\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({items}))\n\
                                 }},"
                            );
                        }
                    }
                }
            }
            let object_arm = if has_content {
                format!(
                    "::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                     let (__tag, __content) = &__entries[0];\n\
                     match __tag.as_str() {{\n\
                     {content_arms}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"unknown variant `{{__other}}` for `{name}`\"))),\n\
                     }}\n\
                     }},"
                )
            } else {
                String::new()
            };
            format!(
                "match __value {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` for `{name}`\"))),\n\
                 }},\n\
                 {object_arm}\n\
                 _ => ::std::result::Result::Err(::serde::DeError::custom(\
                 \"unsupported value shape for enum `{name}`\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
