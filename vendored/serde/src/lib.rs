//! Minimal offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the handful of external dependencies are vendored as small, purpose-built
//! implementations. This crate provides just enough of serde's surface for
//! the workspace: `#[derive(Serialize, Deserialize)]` on plain structs and
//! enums (no `#[serde(...)]` attributes, no generics), mediated through an
//! in-memory [`Value`] tree that `serde_json` renders to and parses from.
//!
//! The data model is deliberately tiny: every serializable type converts to
//! a [`Value`], and every deserializable type reconstructs itself from one.

#![forbid(unsafe_code)]

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An in-memory representation of a serialized value (a JSON-like tree).
///
/// Unsigned and signed integers are kept distinct from floats so that
/// 64-bit counters and bit-packed identifiers round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (exact for the full `u64` range).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// UTF-8 string.
    String(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered map with string keys (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries if this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow the elements if this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow the string if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Error produced while reconstructing a type from a [`Value`].
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself as a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// Hook used by derived code when a struct field is absent from the
    /// serialized object. The default is an error; `Option<T>` overrides it
    /// to yield `None`, which keeps older snapshots readable after a new
    /// optional field is added.
    #[doc(hidden)]
    fn __missing_field(field: &str) -> Result<Self, DeError> {
        Err(DeError::custom(format!("missing field `{field}`")))
    }
}

/// Field lookup helper used by derived `Deserialize` impls.
#[doc(hidden)]
pub fn __get_field<T: Deserialize>(
    obj: &[(String, Value)],
    field: &str,
    ty: &str,
) -> Result<T, DeError> {
    match obj.iter().find(|(key, _)| key == field) {
        Some((_, value)) => {
            T::from_value(value).map_err(|e| DeError::custom(format!("{ty}.{field}: {e}")))
        }
        None => T::__missing_field(field),
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let raw = u64::from_value(value)?;
        usize::try_from(raw).map_err(|_| DeError::custom(format!("integer {raw} out of range")))
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| DeError::custom(format!("integer {u} out of range")))?,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::custom(format!(
                        "expected number, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

/// Deserializing into `&'static str` leaks the string. This only exists so
/// that `#[derive(Deserialize)]` compiles on static-table rows; round-trips
/// of such tables are confined to short-lived test processes.
impl Deserialize for &'static str {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = String::from_value(value)?;
        Ok(Box::leak(s.into_boxed_str()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn __missing_field(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| DeError::custom("expected array for tuple"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected {expected}-tuple, found {} elements",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|v| DeError::custom(format!("expected {N} elements, found {}", v.len())))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_field_yields_none() {
        let got: Option<u32> = Deserialize::__missing_field("x").unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn integers_round_trip_exactly() {
        let big: u64 = (1 << 63) | 42;
        let v = big.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), big);
        let neg: i64 = -7;
        assert_eq!(i64::from_value(&neg.to_value()).unwrap(), neg);
    }
}
