//! Minimal offline stand-in for `serde_json`.
//!
//! Serializes the vendored [`serde::Value`] tree to JSON text (compact and
//! pretty) and parses JSON text back into it. Integer values round-trip
//! exactly across the full `u64`/`i64` range; floats use Rust's shortest
//! round-trip `Display` formatting.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Error produced while parsing or mapping JSON.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as JSON indented with two spaces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(Error::new)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u escape"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(magnitude) = rest.parse::<i64>() {
                    return Ok(Value::Int(-magnitude));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(u64::MAX)),
            ("b".into(), Value::Float(0.125)),
            (
                "c".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("d".into(), Value::String("line\n\"quote\"".into())),
            ("e".into(), Value::Int(-42)),
        ]);
        let compact = to_string(&v).unwrap();
        let parsed: Value = from_str(&compact).unwrap();
        assert_eq!(parsed, v);
        let pretty = to_string_pretty(&v).unwrap();
        let parsed_pretty: Value = from_str(&pretty).unwrap();
        assert_eq!(parsed_pretty, v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
    }
}
