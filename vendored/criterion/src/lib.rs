//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset used by this workspace's `harness = false` bench
//! targets: `Criterion`, `benchmark_group`, `bench_function`, `Throughput`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros. Each
//! benchmark is timed with `std::time::Instant` over a fixed number of
//! iterations and reported as mean wall-clock time per iteration — no
//! statistics, plots, or baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed iterations per benchmark (criterion's `sample_size` is
/// interpreted loosely: it scales this count down for slow benches).
const DEFAULT_ITERS: u64 = 10;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: DEFAULT_ITERS,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, DEFAULT_ITERS, f);
        self
    }
}

/// Throughput annotation (recorded but only echoed, not rated).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Record the per-iteration throughput (echoed only).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        println!("  throughput: {throughput:?}");
        self
    }

    /// Set the iteration count for subsequent benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size.min(DEFAULT_ITERS), f);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` does the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this bencher's iteration budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One untimed warm-up call.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(id: &str, iters: u64, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / iters as f64;
    println!("  {id}: {:.3} ms/iter ({iters} iters)", per_iter * 1e3);
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
