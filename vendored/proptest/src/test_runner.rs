//! Deterministic random number generation for property tests.

/// Number of cases each property runs, configurable via `PROPTEST_CASES`.
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(32)
}

/// A small deterministic RNG (splitmix64) seeded from the test path and
/// case index, so every failure reproduces without recording a seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator for one case of one named test.
    pub fn for_case(test_path: &str, case: u64) -> Self {
        // FNV-1a over the test path, perturbed by the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        TestRng { state: h }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = TestRng::for_case("mod::test", 3);
        let mut b = TestRng::for_case("mod::test", 3);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_cases_diverge() {
        let mut a = TestRng::for_case("mod::test", 0);
        let mut b = TestRng::for_case("mod::test", 1);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
