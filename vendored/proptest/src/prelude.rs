//! One-stop imports for property tests, mirroring `proptest::prelude`.

pub use crate as prop;
pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::TestRng;
pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
