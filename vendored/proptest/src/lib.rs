//! Minimal offline stand-in for the `proptest` crate.
//!
//! Provides the subset of proptest used by this workspace: the `proptest!`
//! macro, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, the [`Strategy`]
//! trait with ranges / tuples / `prop_map` / `Just` / boxed unions, plus
//! `prop::collection::vec` and `prop::option::of`.
//!
//! Differences from real proptest: no shrinking (a failing case panics with
//! its generated inputs printed), and generation is derived from a
//! deterministic per-test seed so failures reproduce exactly. The case
//! count defaults to 32 and can be raised with `PROPTEST_CASES`.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// expands to a test that runs the body over many generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::test_runner::cases();
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __inputs = ::std::vec![
                        $((stringify!($arg), ::std::format!("{:?}", $arg))),+
                    ];
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let ::std::result::Result::Err(__panic) = __result {
                        ::std::eprintln!(
                            "proptest case {}/{} of `{}` failed with inputs:",
                            __case + 1,
                            __cases,
                            stringify!($name),
                        );
                        for (__n, __v) in &__inputs {
                            ::std::eprintln!("  {__n} = {__v}");
                        }
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )+
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        ::std::assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        ::std::assert!($cond, $($fmt)+)
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        ::std::assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        ::std::assert_eq!($left, $right, $($fmt)+)
    };
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
