//! The [`Strategy`] trait and combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Object safe: `prop_map` and `boxed` are `Self: Sized`, so
/// `Box<dyn Strategy<Value = T>>` works for heterogeneous unions.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("strategy::bounds", 0);
        for _ in 0..500 {
            let v = (10u32..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.0f64..1.0).generate(&mut rng);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let mut rng = TestRng::for_case("strategy::union", 0);
        let u = Union::new(vec![Just(1u32).boxed(), Just(2u32).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
