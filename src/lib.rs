//! Umbrella crate for the `gpumem` workspace: hosts the cross-crate
//! integration tests in `tests/` and the runnable examples in `examples/`.
//!
//! The substance lives in the member crates; start at [`gpumem`] for the
//! public API reproducing *Characterizing Memory Bottlenecks in GPGPU
//! Workloads* (IISWC 2016).

pub use gpumem;
